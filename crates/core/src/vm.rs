//! The monitor virtual machine.
//!
//! Executes verified [`Program`]s against the feature store. Arithmetic is
//! total (division/modulo by zero yield 0, NaN comparisons are false), and
//! the interpreter charges fuel per instruction so the engine can account
//! monitoring overhead (property P5). A verified program cannot fail:
//! [`Vm::run`] on one always returns a value.

use std::collections::HashMap;

use simkernel::Nanos;

use crate::compile::ir::{FusedOp, Op, Program};
use crate::store::FeatureStore;

/// Per-program persistent state for `DELTA(key)`: last-seen scalar values.
pub type DeltaState = HashMap<u16, f64>;

/// The evaluation context a program runs in.
pub struct EvalCtx<'a> {
    /// The feature store (reads only; writes happen through actions).
    pub store: &'a FeatureStore,
    /// Current simulated time (anchors windowed aggregates).
    pub now: Nanos,
    /// Trigger arguments (empty under TIMER triggers).
    pub args: &'a [f64],
    /// Persistent `DELTA` state for this program.
    pub deltas: &'a mut DeltaState,
}

/// The result of one program evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// The value left on the stack (booleans as 0.0/1.0).
    pub value: f64,
    /// Fuel consumed (the verifier's static cost model, charged dynamically).
    pub fuel: u64,
}

impl EvalResult {
    /// Interprets the result as a boolean.
    pub fn as_bool(self) -> bool {
        self.value != 0.0
    }
}

/// A fault aborting a [`Vm::try_run`] evaluation.
///
/// Verified programs cannot underflow or jump out of bounds, but a caller
/// may impose a *dynamic* fuel budget tighter than the verifier's static
/// bound (or a fault-injection harness may shrink it mid-run); exhausting
/// it aborts the evaluation without a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmFault {
    /// The dynamic fuel budget ran out before the program completed.
    FuelExhausted {
        /// Fuel consumed when the budget tripped.
        used: u64,
        /// The budget that was in force.
        limit: u64,
    },
}

impl std::fmt::Display for VmFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmFault::FuelExhausted { used, limit } => {
                write!(f, "fuel exhausted ({used} used, limit {limit})")
            }
        }
    }
}

impl std::error::Error for VmFault {}

/// A reusable stack VM.
///
/// # Examples
///
/// ```
/// use guardrails::compile::compile_str;
/// use guardrails::vm::{EvalCtx, Vm};
/// use guardrails::FeatureStore;
/// use simkernel::Nanos;
///
/// let compiled = compile_str(
///     "guardrail g { trigger: { TIMER(0,1s) }, rule: { LOAD(x) <= 0.05 }, action: { REPORT(m) } }",
/// ).unwrap();
/// let store = FeatureStore::new();
/// store.save("x", 0.2);
/// let mut vm = Vm::new();
/// let mut deltas = Default::default();
/// let result = vm.run(
///     &compiled[0].rules[0].program,
///     &mut EvalCtx { store: &store, now: Nanos::ZERO, args: &[], deltas: &mut deltas },
/// );
/// assert!(!result.as_bool()); // 0.2 > 0.05: the rule does not hold.
/// ```
#[derive(Debug, Default)]
pub struct Vm {
    stack: Vec<f64>,
}

impl Vm {
    /// Creates a VM with an empty stack.
    pub fn new() -> Self {
        Vm {
            stack: Vec::with_capacity(16),
        }
    }

    /// Executes a *verified* program to completion.
    ///
    /// # Panics
    ///
    /// Panics on stack underflow or malformed jumps, which the verifier
    /// excludes; running an unverified program is a programming error.
    pub fn run(&mut self, program: &Program, ctx: &mut EvalCtx<'_>) -> EvalResult {
        self.exec(program, ctx, None)
            .expect("unlimited fuel cannot exhaust")
    }

    /// Executes a verified program under a dynamic fuel budget.
    ///
    /// Returns [`VmFault::FuelExhausted`] when cumulative fuel exceeds
    /// `fuel_limit` before the program finishes; the engine's watchdog uses
    /// this to detect rules that can no longer complete within budget
    /// instead of letting them run unbounded.
    pub fn try_run(
        &mut self,
        program: &Program,
        ctx: &mut EvalCtx<'_>,
        fuel_limit: Option<u64>,
    ) -> Result<EvalResult, VmFault> {
        self.exec(program, ctx, fuel_limit)
    }

    fn exec(
        &mut self,
        program: &Program,
        ctx: &mut EvalCtx<'_>,
        fuel_limit: Option<u64>,
    ) -> Result<EvalResult, VmFault> {
        if program.fused.is_empty() {
            self.exec_base(program, ctx, fuel_limit)
        } else {
            self.exec_fused(program, ctx, fuel_limit)
        }
    }

    /// The fused fast loop: superinstructions keep their operands in the
    /// instruction and their intermediates in locals (register style), so
    /// the dominant `LOAD(k) <= c` rule shape is one dispatch and one stack
    /// push instead of three dispatches and four stack moves. Anything not
    /// fused executes through the same stack machinery as
    /// [`Vm::exec_base`] via [`FusedOp::Plain`]. Each fused instruction
    /// charges the summed fuel of its constituents, so fuel totals — and
    /// fuel-limit faulting — match the base stream exactly.
    fn exec_fused(
        &mut self,
        program: &Program,
        ctx: &mut EvalCtx<'_>,
        fuel_limit: Option<u64>,
    ) -> Result<EvalResult, VmFault> {
        self.stack.clear();
        let mut fuel = 0u64;
        let mut pc = 0usize;
        let fused = &program.fused;
        while pc < fused.len() {
            let fop = fused[pc];
            fuel += fop.cost();
            if let Some(limit) = fuel_limit {
                if fuel > limit {
                    return Err(VmFault::FuelExhausted { used: fuel, limit });
                }
            }
            let mut next = pc + 1;
            match fop {
                FusedOp::LoadCmpConst { key, cmp, constant } => {
                    let v = ctx.store.load(program.key(key)).unwrap_or(0.0);
                    self.stack
                        .push(if cmp.eval(v, constant) { 1.0 } else { 0.0 });
                }
                FusedOp::ArgCmpConst { arg, cmp, constant } => {
                    let v = ctx.args.get(usize::from(arg)).copied().unwrap_or(0.0);
                    self.stack
                        .push(if cmp.eval(v, constant) { 1.0 } else { 0.0 });
                }
                FusedOp::LoadArithConst {
                    key,
                    arith,
                    constant,
                } => {
                    let v = ctx.store.load(program.key(key)).unwrap_or(0.0);
                    self.stack.push(arith.eval(v, constant));
                }
                FusedOp::Plain(op) => self.step(op, program, ctx, &mut next),
            }
            pc = next;
        }
        let value = self.stack.pop().unwrap_or(0.0);
        Ok(EvalResult { value, fuel })
    }

    fn exec_base(
        &mut self,
        program: &Program,
        ctx: &mut EvalCtx<'_>,
        fuel_limit: Option<u64>,
    ) -> Result<EvalResult, VmFault> {
        self.stack.clear();
        let mut fuel = 0u64;
        let mut pc = 0usize;
        let ops = &program.ops;
        while pc < ops.len() {
            let op = ops[pc];
            fuel += op.cost();
            if let Some(limit) = fuel_limit {
                if fuel > limit {
                    return Err(VmFault::FuelExhausted { used: fuel, limit });
                }
            }
            let mut next = pc + 1;
            self.step(op, program, ctx, &mut next);
            pc = next;
        }
        let value = self.stack.pop().unwrap_or(0.0);
        Ok(EvalResult { value, fuel })
    }

    /// Executes one base op against the stack. `next` arrives as the
    /// fall-through successor index and is overwritten by taken jumps; in
    /// the fused stream, jump operands were rewritten to fused indices at
    /// fusion time, so the same step function serves both loops.
    fn step(&mut self, op: Op, program: &Program, ctx: &mut EvalCtx<'_>, next: &mut usize) {
        match op {
            Op::Push(v) => self.stack.push(v),
            Op::Load(k) => self
                .stack
                .push(ctx.store.load(program.key(k)).unwrap_or(0.0)),
            Op::Arg(i) => self
                .stack
                .push(ctx.args.get(usize::from(i)).copied().unwrap_or(0.0)),
            Op::Agg {
                kind,
                key,
                window_ns,
            } => self.stack.push(ctx.store.aggregate(
                kind,
                program.key(key),
                Nanos::from_nanos(window_ns),
                ctx.now,
            )),
            Op::Quantile { key, q, window_ns } => self.stack.push(ctx.store.quantile(
                program.key(key),
                q,
                Nanos::from_nanos(window_ns),
                ctx.now,
            )),
            Op::Ewma(k) => self.stack.push(ctx.store.ewma(program.key(k))),
            Op::Hist { key, q } => self
                .stack
                .push(ctx.store.hist_quantile(program.key(key), q)),
            Op::Delta(k) => {
                let current = ctx.store.load(program.key(k)).unwrap_or(0.0);
                let last = ctx.deltas.insert(k, current).unwrap_or(current);
                self.stack.push(current - last);
            }
            Op::Abs => {
                let x = self.pop();
                self.stack.push(x.abs());
            }
            Op::Neg => {
                let x = self.pop();
                self.stack.push(-x);
            }
            Op::Not => {
                let x = self.pop();
                self.stack.push(if x == 0.0 { 1.0 } else { 0.0 });
            }
            Op::Add => self.binary(|a, b| a + b),
            Op::Sub => self.binary(|a, b| a - b),
            Op::Mul => self.binary(|a, b| a * b),
            Op::Div => self.binary(|a, b| if b == 0.0 { 0.0 } else { a / b }),
            Op::Mod => self.binary(|a, b| if b == 0.0 { 0.0 } else { a % b }),
            Op::Clamp => {
                let hi = self.pop();
                let lo = self.pop();
                let x = self.pop();
                self.stack.push(x.clamp(lo, hi.max(lo)));
            }
            Op::Lt => self.compare(|a, b| a < b),
            Op::Le => self.compare(|a, b| a <= b),
            Op::Gt => self.compare(|a, b| a > b),
            Op::Ge => self.compare(|a, b| a >= b),
            Op::Eq => self.compare(|a, b| a == b),
            Op::Ne => self.compare(|a, b| a != b),
            Op::JumpIfFalsePeek(t) => {
                if self.peek() == 0.0 {
                    *next = usize::from(t);
                }
            }
            Op::JumpIfTruePeek(t) => {
                if self.peek() != 0.0 {
                    *next = usize::from(t);
                }
            }
            Op::Pop => {
                self.pop();
            }
        }
    }

    fn pop(&mut self) -> f64 {
        self.stack.pop().expect("verified program cannot underflow")
    }

    fn peek(&self) -> f64 {
        *self
            .stack
            .last()
            .expect("verified program cannot peek empty stack")
    }

    fn binary(&mut self, f: impl Fn(f64, f64) -> f64) {
        let b = self.pop();
        let a = self.pop();
        self.stack.push(f(a, b));
    }

    fn compare(&mut self, f: impl Fn(f64, f64) -> bool) {
        let b = self.pop();
        let a = self.pop();
        // NaN operands make every comparison false, keeping rules total.
        let result = if a.is_nan() || b.is_nan() {
            false
        } else {
            f(a, b)
        };
        self.stack.push(if result { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::lower::lower_expr;
    use crate::compile::opt::fold_expr;
    use crate::spec::ast::{AggKind, BinOp, Expr, UnOp};

    fn eval_with(store: &FeatureStore, now: Nanos, args: &[f64], e: &Expr) -> EvalResult {
        let program = lower_expr(&fold_expr(e)).unwrap();
        let mut deltas = DeltaState::default();
        Vm::new().run(
            &program,
            &mut EvalCtx {
                store,
                now,
                args,
                deltas: &mut deltas,
            },
        )
    }

    fn eval(e: &Expr) -> f64 {
        eval_with(&FeatureStore::new(), Nanos::ZERO, &[], e).value
    }

    fn num(n: f64) -> Expr {
        Expr::Number(n)
    }

    #[test]
    fn arithmetic_is_total() {
        assert_eq!(
            eval(&Expr::bin(BinOp::Div, Expr::Load("x".into()), num(0.0))),
            0.0
        );
        assert_eq!(
            eval(&Expr::bin(BinOp::Mod, Expr::Load("x".into()), num(0.0))),
            0.0
        );
    }

    #[test]
    fn missing_keys_read_zero() {
        let e = Expr::bin(BinOp::Eq, Expr::Load("never_written".into()), num(0.0));
        assert_eq!(eval(&e), 1.0);
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // false && (1/0 == 7) must be false without evaluating nonsense.
        let rhs = Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Div, num(1.0), num(0.0)),
            num(7.0),
        );
        let lhs = Expr::bin(BinOp::Lt, Expr::Load("a".into()), num(-1.0));
        let result = eval(&Expr::bin(BinOp::And, lhs, rhs));
        assert_eq!(result, 0.0);
        // true || x short-circuits to true.
        let lhs = Expr::bin(BinOp::Ge, Expr::Load("a".into()), num(0.0));
        let result = eval(&Expr::bin(BinOp::Or, lhs, Expr::Bool(false)));
        assert_eq!(result, 1.0);
    }

    #[test]
    fn aggregates_read_the_store() {
        let store = FeatureStore::new();
        for (t, v) in [(1u64, 10.0), (2, 20.0), (3, 30.0)] {
            store.record("lat", Nanos::from_secs(t), v);
        }
        let e = Expr::Aggregate {
            kind: AggKind::Avg,
            key: "lat".into(),
            window: Box::new(num(10e9)),
        };
        let r = eval_with(&store, Nanos::from_secs(3), &[], &e);
        assert_eq!(r.value, 20.0);
        assert!(r.fuel >= 16, "aggregate fuel charged");
        let e = Expr::Quantile {
            key: "lat".into(),
            q: Box::new(num(1.0)),
            window: Box::new(num(10e9)),
        };
        assert_eq!(eval_with(&store, Nanos::from_secs(3), &[], &e).value, 30.0);
    }

    #[test]
    fn args_read_with_default_zero() {
        let store = FeatureStore::new();
        let e = Expr::bin(BinOp::Add, Expr::Arg(0), Expr::Arg(5));
        let r = eval_with(&store, Nanos::ZERO, &[3.0, 4.0], &e);
        assert_eq!(r.value, 3.0, "missing arg 5 reads 0");
    }

    #[test]
    fn delta_tracks_change_between_evaluations() {
        let store = FeatureStore::new();
        store.save("errors", 10.0);
        let program = lower_expr(&Expr::Delta("errors".into())).unwrap();
        let mut deltas = DeltaState::default();
        let mut vm = Vm::new();
        let mut run = |deltas: &mut DeltaState| {
            vm.run(
                &program,
                &mut EvalCtx {
                    store: &store,
                    now: Nanos::ZERO,
                    args: &[],
                    deltas,
                },
            )
            .value
        };
        // First evaluation: no prior value, delta is 0.
        assert_eq!(run(&mut deltas), 0.0);
        store.save("errors", 25.0);
        assert_eq!(run(&mut deltas), 15.0);
        store.save("errors", 25.0);
        assert_eq!(run(&mut deltas), 0.0);
    }

    #[test]
    fn unary_and_clamp() {
        assert_eq!(
            eval(&Expr::Abs(Box::new(Expr::bin(
                BinOp::Sub,
                Expr::Load("z".into()),
                num(3.0)
            )))),
            3.0
        );
        assert_eq!(
            eval(&Expr::Unary(UnOp::Neg, Box::new(Expr::Load("z".into())))),
            -0.0
        );
        let e = Expr::Clamp(
            Box::new(Expr::Load("z".into())),
            Box::new(num(2.0)),
            Box::new(num(5.0)),
        );
        assert_eq!(eval(&e), 2.0);
        let e = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::bin(BinOp::Lt, Expr::Load("z".into()), num(1.0))),
        );
        assert_eq!(eval(&e), 0.0);
    }

    #[test]
    fn hist_quantile_reads() {
        let store = FeatureStore::new();
        for v in [100.0, 200.0, 300.0, 10_000.0] {
            store.hist_observe("fault_lat", v);
        }
        let e = Expr::Hist {
            key: "fault_lat".into(),
            q: Box::new(num(1.0)),
        };
        let r = eval_with(&store, Nanos::ZERO, &[], &e);
        assert_eq!(r.value, 10_000.0);
        // Missing histogram reads 0 (total semantics).
        let e = Expr::Hist {
            key: "missing".into(),
            q: Box::new(num(0.5)),
        };
        assert_eq!(eval_with(&store, Nanos::ZERO, &[], &e).value, 0.0);
    }

    #[test]
    fn ewma_reads() {
        let store = FeatureStore::new();
        store.ewma_update("rate", 10.0, 0.5);
        store.ewma_update("rate", 20.0, 0.5);
        assert_eq!(
            eval_with(&store, Nanos::ZERO, &[], &Expr::Ewma("rate".into())).value,
            15.0
        );
    }

    #[test]
    fn fuel_matches_static_worst_case_for_straightline_code() {
        let e = Expr::bin(BinOp::Le, Expr::Load("x".into()), num(0.05));
        let program = lower_expr(&e).unwrap();
        let store = FeatureStore::new();
        let mut deltas = DeltaState::default();
        let r = Vm::new().run(
            &program,
            &mut EvalCtx {
                store: &store,
                now: Nanos::ZERO,
                args: &[],
                deltas: &mut deltas,
            },
        );
        assert_eq!(r.fuel, program.worst_case_fuel());
    }

    #[test]
    fn try_run_enforces_the_fuel_limit() {
        let e = Expr::bin(BinOp::Le, Expr::Load("x".into()), num(0.05));
        let program = lower_expr(&e).unwrap();
        let store = FeatureStore::new();
        let mut deltas = DeltaState::default();
        let mut vm = Vm::new();
        let mut ctx = EvalCtx {
            store: &store,
            now: Nanos::ZERO,
            args: &[],
            deltas: &mut deltas,
        };
        // A generous limit behaves exactly like `run`.
        let ok = vm.try_run(&program, &mut ctx, Some(1_000)).unwrap();
        assert_eq!(ok.fuel, program.worst_case_fuel());
        // A starved limit faults mid-program.
        let fault = vm.try_run(&program, &mut ctx, Some(1)).unwrap_err();
        let VmFault::FuelExhausted { used, limit } = fault;
        assert_eq!(limit, 1);
        assert!(used > limit);
        assert!(fault.to_string().contains("fuel exhausted"));
        // No limit never faults.
        assert!(vm.try_run(&program, &mut ctx, None).is_ok());
    }

    #[test]
    fn fused_stream_matches_base_stream_bit_for_bit() {
        use crate::compile::opt::fuse_program;
        let store = FeatureStore::new();
        store.save("x", 0.2);
        store.save("b", -3.5);
        let cases = [
            Expr::bin(BinOp::Le, Expr::Load("x".into()), num(0.05)),
            Expr::bin(BinOp::Gt, Expr::Arg(0), num(1.0)),
            Expr::bin(
                BinOp::Lt,
                Expr::bin(BinOp::Div, Expr::Load("x".into()), num(4.0)),
                num(0.1),
            ),
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Lt, Expr::Load("x".into()), num(1.0)),
                Expr::bin(BinOp::Lt, Expr::Load("b".into()), num(2.0)),
            ),
            Expr::bin(
                BinOp::Or,
                Expr::bin(BinOp::Ge, Expr::Load("x".into()), num(1.0)),
                Expr::bin(BinOp::Ne, Expr::Arg(1), num(0.0)),
            ),
        ];
        for e in &cases {
            let base = lower_expr(e).unwrap();
            let mut fused = base.clone();
            fused.fused = fuse_program(&base);
            assert!(
                !fused.fused.is_empty(),
                "every case exercises the fused loop"
            );
            for args in [&[][..], &[2.0, 5.0][..]] {
                let mut d1 = DeltaState::default();
                let mut d2 = DeltaState::default();
                let r_base = Vm::new().run(
                    &base,
                    &mut EvalCtx {
                        store: &store,
                        now: Nanos::ZERO,
                        args,
                        deltas: &mut d1,
                    },
                );
                let r_fused = Vm::new().run(
                    &fused,
                    &mut EvalCtx {
                        store: &store,
                        now: Nanos::ZERO,
                        args,
                        deltas: &mut d2,
                    },
                );
                assert_eq!(r_base, r_fused, "for {e:?} with args {args:?}");
            }
        }
    }

    #[test]
    fn fused_stream_faults_exactly_when_base_stream_faults() {
        use crate::compile::opt::fuse_program;
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Lt, Expr::Load("a".into()), num(1.0)),
            Expr::bin(BinOp::Lt, Expr::Load("b".into()), num(2.0)),
        );
        let base = lower_expr(&e).unwrap();
        let mut fused = base.clone();
        fused.fused = fuse_program(&base);
        let store = FeatureStore::new();
        for limit in 0..=base.worst_case_fuel() + 1 {
            let mut d1 = DeltaState::default();
            let mut d2 = DeltaState::default();
            let mut ctx1 = EvalCtx {
                store: &store,
                now: Nanos::ZERO,
                args: &[],
                deltas: &mut d1,
            };
            let mut ctx2 = EvalCtx {
                store: &store,
                now: Nanos::ZERO,
                args: &[],
                deltas: &mut d2,
            };
            let r_base = Vm::new().try_run(&base, &mut ctx1, Some(limit));
            let r_fused = Vm::new().try_run(&fused, &mut ctx2, Some(limit));
            assert_eq!(
                r_base.is_err(),
                r_fused.is_err(),
                "fault parity at limit {limit}"
            );
            if let (Ok(a), Ok(b)) = (r_base, r_fused) {
                assert_eq!(a, b, "result parity at limit {limit}");
            }
        }
    }

    #[test]
    fn short_circuit_uses_less_fuel_than_worst_case() {
        let lhs = Expr::bin(BinOp::Lt, Expr::Load("a".into()), num(-1.0)); // False.
        let rhs = Expr::bin(BinOp::Lt, Expr::Load("b".into()), num(1.0));
        let program = lower_expr(&Expr::bin(BinOp::And, lhs, rhs)).unwrap();
        let store = FeatureStore::new();
        let mut deltas = DeltaState::default();
        let r = Vm::new().run(
            &program,
            &mut EvalCtx {
                store: &store,
                now: Nanos::ZERO,
                args: &[],
                deltas: &mut deltas,
            },
        );
        assert!(r.fuel < program.worst_case_fuel());
        assert!(!r.as_bool());
    }
}
