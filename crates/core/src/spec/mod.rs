//! The guardrail specification language (Listing 1 of the paper).
//!
//! A guardrail is written as:
//!
//! ```text
//! guardrail low-false-submit {
//!     trigger: {
//!         TIMER(start_time, 1e9) // Periodically check every 1s.
//!     },
//!     rule: {
//!         LOAD(false_submit_rate) <= 0.05
//!     },
//!     action: {
//!         SAVE(ml_enabled, false)
//!     }
//! }
//! ```
//!
//! Grammar (an elaboration of the paper's Listing 1):
//!
//! ```text
//! Spec      := Guardrail+
//! Guardrail := "guardrail" Name "{" Section ("," Section)* ","? "}"
//! Section   := "trigger" ":" "{" Trigger+ "}"
//!            | "rule"    ":" "{" Expr+ "}"          // Conjunction of rules.
//!            | "action"  ":" "{" Action+ "}"
//! Trigger   := TIMER "(" Expr ("," Expr ("," Expr)?)? ")"   // start, interval, [stop]
//!            | FUNCTION "(" Name ")"
//! Action    := REPORT "(" Msg ("," Key)* ")"
//!            | REPLACE "(" Slot "," Variant ")"
//!            | RETRAIN "(" Model ")"
//!            | DEPRIORITIZE "(" Target ("," Expr)? ")"
//!            | SAVE "(" Key "," Expr ")"
//!            | RECORD "(" Key "," Expr ")"
//! Expr      := boolean/arithmetic expressions over literals, LOAD(key),
//!              ARG(i), windowed aggregates (AVG, SUM, COUNT, MIN, MAX,
//!              STDDEV, RATE, QUANTILE, EWMA, DELTA) and scalar math (ABS,
//!              CLAMP). Duration literals `1s`, `20ms`, `100us`, `5ns`
//!              evaluate to nanoseconds.
//! ```
//!
//! Rules are *decoupled from triggers* (§4.1): the same rule may be checked
//! periodically (`TIMER`) or on every invocation of a kernel function
//! (`FUNCTION`), and a property may list several triggers.

pub mod ast;
pub mod check;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{ActionStmt, BinOp, Expr, Guardrail, Spec, Trigger, UnOp};
pub use check::{check_spec, CheckedSpec};
pub use lexer::lex;
pub use parser::parse;
pub use token::{Token, TokenKind};

/// Parses and checks guardrail source text in one call.
///
/// # Examples
///
/// ```
/// let spec = guardrails::spec::parse_and_check(
///     "guardrail g { trigger: { TIMER(0, 1s) }, rule: { LOAD(x) < 1 }, action: { REPORT(\"x high\") } }",
/// ).unwrap();
/// assert_eq!(spec.spec.guardrails.len(), 1);
/// ```
pub fn parse_and_check(source: &str) -> crate::error::Result<CheckedSpec> {
    let spec = parse(source)?;
    check_spec(spec)
}
