//! Pretty-printing of specifications back to source text.
//!
//! The printer emits canonical source that re-parses to the same AST; the
//! round-trip property is exercised by the property-based tests. It is also
//! how synthesized guardrails (see [`crate::props`]) are rendered for
//! developer review before installation.

use std::fmt::Write as _;

use crate::spec::ast::{ActionStmt, BinOp, Expr, Guardrail, Spec, Trigger, UnOp};

/// Renders a whole spec as canonical source text.
pub fn print_spec(spec: &Spec) -> String {
    let mut out = String::new();
    for (i, g) in spec.guardrails.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_guardrail_into(&mut out, g);
    }
    out
}

/// Renders one guardrail as canonical source text.
pub fn print_guardrail(g: &Guardrail) -> String {
    let mut out = String::new();
    print_guardrail_into(&mut out, g);
    out
}

fn print_guardrail_into(out: &mut String, g: &Guardrail) {
    let _ = writeln!(out, "guardrail {} {{", ident_or_quoted(&g.name));
    let _ = writeln!(out, "    trigger: {{");
    for t in &g.triggers {
        let _ = writeln!(out, "        {}", print_trigger(t));
    }
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    rule: {{");
    for r in &g.rules {
        // The explicit ';' prevents a following rule that starts with '-'
        // or another continuation token from being absorbed into this
        // expression.
        let _ = writeln!(out, "        {};", print_expr(r));
    }
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    action: {{");
    for a in &g.actions {
        let _ = writeln!(out, "        {}", print_action(a));
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
}

fn print_trigger(t: &Trigger) -> String {
    match t {
        Trigger::Timer {
            start,
            interval,
            stop,
        } => match stop {
            Some(stop) => format!(
                "TIMER({}, {}, {})",
                print_expr(start),
                print_expr(interval),
                print_expr(stop)
            ),
            None => format!("TIMER({}, {})", print_expr(start), print_expr(interval)),
        },
        Trigger::Function { hook } => format!("FUNCTION({})", ident_or_quoted(hook)),
    }
}

fn print_action(a: &ActionStmt) -> String {
    match a {
        ActionStmt::Report { message, keys } => {
            let mut s = format!("REPORT({:?}", message);
            for k in keys {
                let _ = write!(s, ", {}", ident_or_quoted(k));
            }
            s.push(')');
            s
        }
        ActionStmt::Replace { slot, variant } => {
            format!(
                "REPLACE({}, {})",
                ident_or_quoted(slot),
                ident_or_quoted(variant)
            )
        }
        ActionStmt::Retrain { model } => format!("RETRAIN({})", ident_or_quoted(model)),
        ActionStmt::Deprioritize { target, steps } => match steps {
            Some(e) => format!(
                "DEPRIORITIZE({}, {})",
                ident_or_quoted(target),
                print_expr(e)
            ),
            None => format!("DEPRIORITIZE({})", ident_or_quoted(target)),
        },
        ActionStmt::Save { key, value } => {
            format!("SAVE({}, {})", ident_or_quoted(key), print_expr(value))
        }
        ActionStmt::Record { key, value } => {
            format!("RECORD({}, {})", ident_or_quoted(key), print_expr(value))
        }
    }
}

/// Quotes a name only when it is not a valid bare identifier.
fn ident_or_quoted(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        && !name.ends_with('-')
        && !name.ends_with('.')
        && !name.contains("--")
        && !name.contains("..")
        && !name.contains(".-")
        && !name.contains("-.")
        && name != "true"
        && name != "false";
    if bare {
        name.to_string()
    } else {
        format!("{name:?}")
    }
}

/// Renders an expression, parenthesizing compound operands conservatively.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Number(n) => format_number(*n),
        Expr::Bool(b) => b.to_string(),
        Expr::Symbol(s) => s.clone(),
        Expr::Load(k) => format!("LOAD({})", ident_or_quoted(k)),
        Expr::Arg(i) => format!("ARG({i})"),
        Expr::Ewma(k) => format!("EWMA({})", ident_or_quoted(k)),
        Expr::Delta(k) => format!("DELTA({})", ident_or_quoted(k)),
        Expr::Aggregate { kind, key, window } => format!(
            "{}({}, {})",
            kind.name(),
            ident_or_quoted(key),
            print_expr(window)
        ),
        Expr::Quantile { key, q, window } => format!(
            "QUANTILE({}, {}, {})",
            ident_or_quoted(key),
            print_expr(q),
            print_expr(window)
        ),
        Expr::Hist { key, q } => {
            format!("HIST({}, {})", ident_or_quoted(key), print_expr(q))
        }
        Expr::Abs(x) => format!("ABS({})", print_expr(x)),
        Expr::Clamp(x, lo, hi) => format!(
            "CLAMP({}, {}, {})",
            print_expr(x),
            print_expr(lo),
            print_expr(hi)
        ),
        // A negated literal must print parenthesized: bare `-5` re-parses
        // as the literal -5, not as Neg(5).
        Expr::Unary(UnOp::Neg, x) if matches!(**x, Expr::Number(_)) => {
            format!("-({})", print_expr(x))
        }
        Expr::Unary(UnOp::Neg, x) => format!("-{}", atom(x)),
        Expr::Unary(UnOp::Not, x) => format!("!{}", atom(x)),
        Expr::Binary(op, l, r) => {
            format!("{} {} {}", atom(l), op_str(*op), atom(r))
        }
    }
}

/// Wraps compound expressions in parentheses so precedence is explicit.
fn atom(e: &Expr) -> String {
    match e {
        Expr::Binary(..) => format!("({})", print_expr(e)),
        _ => print_expr(e),
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Formats a float so it re-lexes to the same value (no suffix shorthand).
fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        // `{:?}` on f64 produces a round-trippable representation.
        format!("{n:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parser::parse;

    fn round_trip(src: &str) {
        let spec = parse(src).unwrap();
        let printed = print_spec(&spec);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(spec, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn listing_2_round_trips() {
        round_trip(
            r#"guardrail low-false-submit {
                trigger: { TIMER(start_time, 1e9) },
                rule: { LOAD(false_submit_rate) <= 0.05 },
                action: { SAVE(ml_enabled, false) }
            }"#,
        );
    }

    #[test]
    fn complex_spec_round_trips() {
        round_trip(
            r#"guardrail g {
                trigger: { TIMER(0, 1s, 10s) FUNCTION(io_submit) },
                rule: {
                    (AVG(lat, 10s) < 2000 || QUANTILE(lat, 0.99, 10s) < 50ms) && !(LOAD(x) == 1)
                    CLAMP(ABS(DELTA(err)), 0, 10) * 2 - 1 <= EWMA(rate) % 7
                    ARG(3) / RATE(ev, 500ms) > -5
                },
                action: {
                    REPORT("hi there, \"world\"", lat, x)
                    REPLACE(slot, variant)
                    RETRAIN(model)
                    DEPRIORITIZE(tgt, 2 + 3)
                    RECORD(k, COUNT(ev, 1s))
                }
            }"#,
        );
    }

    #[test]
    fn negative_numbers_round_trip() {
        round_trip(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { LOAD(x) > -1.5 }, action: { SAVE(y, -2) } }",
        );
    }

    #[test]
    fn quoted_names_when_needed() {
        assert_eq!(ident_or_quoted("ok_name-1"), "ok_name-1");
        assert_eq!(ident_or_quoted("1bad"), "\"1bad\"");
        assert_eq!(ident_or_quoted("has space"), "\"has space\"");
        assert_eq!(ident_or_quoted("true"), "\"true\"");
        assert_eq!(ident_or_quoted(""), "\"\"");
        assert_eq!(ident_or_quoted("bad-"), "\"bad-\"");
    }

    #[test]
    fn number_formatting_is_lossless() {
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(0.05), "0.05");
        let printed = format_number(1e-17);
        assert_eq!(printed.parse::<f64>().unwrap(), 1e-17);
    }
}
