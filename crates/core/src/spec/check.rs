//! Semantic and type checking of parsed specifications.
//!
//! Checking establishes the invariants the compiler and verifier rely on:
//! rules are boolean, trigger parameters are positive compile-time constants,
//! `ARG(i)` only appears under a `FUNCTION` trigger, and quantiles are inside
//! `[0, 1]`. Symbolic names like `start_time` (used verbatim in the paper's
//! Listing 2) are resolved against a bindings table here.

use std::collections::HashMap;

use simkernel::Nanos;

use crate::error::{GuardrailError, Result};
use crate::spec::ast::{ActionStmt, BinOp, Expr, Guardrail, Spec, Trigger, UnOp};

/// A resolved periodic trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerSpec {
    /// First evaluation time.
    pub start: Nanos,
    /// Period between evaluations (always > 0).
    pub interval: Nanos,
    /// Last evaluation time ([`Nanos::MAX`] when unbounded).
    pub stop: Nanos,
}

/// A guardrail that passed checking, with triggers resolved.
#[derive(Clone, Debug)]
pub struct CheckedGuardrail {
    /// The guardrail name.
    pub name: String,
    /// Resolved periodic triggers.
    pub timers: Vec<TimerSpec>,
    /// Tracepoint names for `FUNCTION` triggers.
    pub hooks: Vec<String>,
    /// Boolean rule expressions (symbols substituted).
    pub rules: Vec<Expr>,
    /// Corrective actions (operand expressions checked).
    pub actions: Vec<ActionStmt>,
}

/// A fully checked specification.
#[derive(Clone, Debug)]
pub struct CheckedSpec {
    /// The original parsed spec (for pretty-printing and diagnostics).
    pub spec: Spec,
    /// The checked guardrails, in source order.
    pub checked: Vec<CheckedGuardrail>,
}

/// The value type of an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Type {
    /// A number (durations are numbers of nanoseconds).
    Num,
    /// A boolean.
    Bool,
}

/// Default symbolic bindings: `start_time` = 0 and `stop_time` = never,
/// letting the paper's Listing 2 check without edits.
pub fn default_bindings() -> HashMap<String, f64> {
    HashMap::from([
        ("start_time".to_string(), 0.0),
        ("stop_time".to_string(), u64::MAX as f64),
    ])
}

/// Checks a spec with the [`default_bindings`].
pub fn check_spec(spec: Spec) -> Result<CheckedSpec> {
    check_spec_with_bindings(spec, &default_bindings())
}

/// Checks a spec, resolving symbolic constants against `bindings`.
pub fn check_spec_with_bindings(
    spec: Spec,
    bindings: &HashMap<String, f64>,
) -> Result<CheckedSpec> {
    let mut checked = Vec::with_capacity(spec.guardrails.len());
    let mut seen = std::collections::HashSet::new();
    for g in &spec.guardrails {
        if !seen.insert(g.name.clone()) {
            return Err(GuardrailError::check(
                &g.name,
                "duplicate guardrail name in spec",
            ));
        }
        checked.push(check_guardrail(g, bindings)?);
    }
    Ok(CheckedSpec { spec, checked })
}

fn check_guardrail(g: &Guardrail, bindings: &HashMap<String, f64>) -> Result<CheckedGuardrail> {
    let mut timers = Vec::new();
    let mut hooks = Vec::new();
    for t in &g.triggers {
        match t {
            Trigger::Timer {
                start,
                interval,
                stop,
            } => {
                let start_ns = const_num(start, bindings, &g.name, "TIMER start")?;
                let interval_ns = const_num(interval, bindings, &g.name, "TIMER interval")?;
                if interval_ns.is_nan() || interval_ns <= 0.0 {
                    return Err(GuardrailError::check(
                        &g.name,
                        format!("TIMER interval must be positive, got {interval_ns}"),
                    ));
                }
                if start_ns < 0.0 {
                    return Err(GuardrailError::check(
                        &g.name,
                        format!("TIMER start must be non-negative, got {start_ns}"),
                    ));
                }
                let stop_ns = match stop {
                    Some(e) => {
                        let v = const_num(e, bindings, &g.name, "TIMER stop")?;
                        if v < start_ns {
                            return Err(GuardrailError::check(
                                &g.name,
                                "TIMER stop precedes start",
                            ));
                        }
                        to_nanos(v)
                    }
                    None => Nanos::MAX,
                };
                timers.push(TimerSpec {
                    start: to_nanos(start_ns),
                    interval: to_nanos(interval_ns),
                    stop: stop_ns,
                });
            }
            Trigger::Function { hook } => {
                if hook.is_empty() {
                    return Err(GuardrailError::check(
                        &g.name,
                        "FUNCTION hook name is empty",
                    ));
                }
                hooks.push(hook.clone());
            }
        }
    }
    let has_function_trigger = !hooks.is_empty();

    let mut rules = Vec::with_capacity(g.rules.len());
    for rule in &g.rules {
        let resolved = substitute_symbols(rule, bindings, &g.name)?;
        let ctx = ExprCtx {
            guardrail: &g.name,
            allow_args: has_function_trigger,
        };
        let ty = type_of(&resolved, &ctx)?;
        if ty != Type::Bool {
            return Err(GuardrailError::check(
                &g.name,
                "rule must be a boolean expression",
            ));
        }
        rules.push(resolved);
    }

    let mut actions = Vec::with_capacity(g.actions.len());
    for action in &g.actions {
        actions.push(check_action(
            action,
            bindings,
            &g.name,
            has_function_trigger,
        )?);
    }

    Ok(CheckedGuardrail {
        name: g.name.clone(),
        timers,
        hooks,
        rules,
        actions,
    })
}

fn check_action(
    action: &ActionStmt,
    bindings: &HashMap<String, f64>,
    guardrail: &str,
    allow_args: bool,
) -> Result<ActionStmt> {
    let ctx = ExprCtx {
        guardrail,
        allow_args,
    };
    let checked = match action {
        ActionStmt::Report { message, keys } => ActionStmt::Report {
            message: message.clone(),
            keys: keys.clone(),
        },
        ActionStmt::Replace { slot, variant } => ActionStmt::Replace {
            slot: slot.clone(),
            variant: variant.clone(),
        },
        ActionStmt::Retrain { model } => ActionStmt::Retrain {
            model: model.clone(),
        },
        ActionStmt::Deprioritize { target, steps } => {
            let steps = match steps {
                Some(e) => {
                    let resolved = substitute_symbols(e, bindings, guardrail)?;
                    if type_of(&resolved, &ctx)? != Type::Num {
                        return Err(GuardrailError::check(
                            guardrail,
                            "DEPRIORITIZE steps must be numeric",
                        ));
                    }
                    Some(resolved)
                }
                None => None,
            };
            ActionStmt::Deprioritize {
                target: target.clone(),
                steps,
            }
        }
        ActionStmt::Save { key, value } => {
            let resolved = substitute_symbols(value, bindings, guardrail)?;
            // Either type is storable: booleans are stored as 0/1.
            let _ = type_of(&resolved, &ctx)?;
            ActionStmt::Save {
                key: key.clone(),
                value: resolved,
            }
        }
        ActionStmt::Record { key, value } => {
            let resolved = substitute_symbols(value, bindings, guardrail)?;
            if type_of(&resolved, &ctx)? != Type::Num {
                return Err(GuardrailError::check(
                    guardrail,
                    "RECORD value must be numeric",
                ));
            }
            ActionStmt::Record {
                key: key.clone(),
                value: resolved,
            }
        }
    };
    Ok(checked)
}

fn to_nanos(v: f64) -> Nanos {
    Nanos::from_nanos(v.min(u64::MAX as f64).max(0.0) as u64)
}

/// Replaces [`Expr::Symbol`] nodes with bound constants; unbound symbols are
/// an error pointing the developer at `LOAD`.
fn substitute_symbols(e: &Expr, bindings: &HashMap<String, f64>, guardrail: &str) -> Result<Expr> {
    Ok(match e {
        Expr::Symbol(name) => match bindings.get(name) {
            Some(&v) => Expr::Number(v),
            None => {
                return Err(GuardrailError::check(
                    guardrail,
                    format!("unknown identifier '{name}' (feature-store reads use LOAD({name}))"),
                ))
            }
        },
        Expr::Aggregate { kind, key, window } => Expr::Aggregate {
            kind: *kind,
            key: key.clone(),
            window: Box::new(substitute_symbols(window, bindings, guardrail)?),
        },
        Expr::Quantile { key, q, window } => Expr::Quantile {
            key: key.clone(),
            q: Box::new(substitute_symbols(q, bindings, guardrail)?),
            window: Box::new(substitute_symbols(window, bindings, guardrail)?),
        },
        Expr::Hist { key, q } => Expr::Hist {
            key: key.clone(),
            q: Box::new(substitute_symbols(q, bindings, guardrail)?),
        },
        Expr::Abs(x) => Expr::Abs(Box::new(substitute_symbols(x, bindings, guardrail)?)),
        Expr::Clamp(x, lo, hi) => Expr::Clamp(
            Box::new(substitute_symbols(x, bindings, guardrail)?),
            Box::new(substitute_symbols(lo, bindings, guardrail)?),
            Box::new(substitute_symbols(hi, bindings, guardrail)?),
        ),
        Expr::Unary(op, x) => {
            Expr::Unary(*op, Box::new(substitute_symbols(x, bindings, guardrail)?))
        }
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(substitute_symbols(l, bindings, guardrail)?),
            Box::new(substitute_symbols(r, bindings, guardrail)?),
        ),
        other => other.clone(),
    })
}

struct ExprCtx<'a> {
    guardrail: &'a str,
    allow_args: bool,
}

/// Infers the type of a (symbol-free) expression, validating sub-expressions.
fn type_of(e: &Expr, ctx: &ExprCtx<'_>) -> Result<Type> {
    let err = |msg: String| GuardrailError::check(ctx.guardrail, msg);
    match e {
        Expr::Number(_) => Ok(Type::Num),
        Expr::Bool(_) => Ok(Type::Bool),
        Expr::Symbol(s) => Err(err(format!("unresolved symbol '{s}'"))),
        Expr::Load(_) | Expr::Ewma(_) | Expr::Delta(_) => Ok(Type::Num),
        Expr::Arg(_) => {
            if ctx.allow_args {
                Ok(Type::Num)
            } else {
                Err(err(
                    "ARG(i) requires a FUNCTION trigger (TIMER evaluations have no arguments)"
                        .into(),
                ))
            }
        }
        Expr::Aggregate { kind, window, .. } => {
            expect_const_positive(window, ctx, &format!("{} window", kind.name()))?;
            Ok(Type::Num)
        }
        Expr::Quantile { q, window, .. } => {
            let qv = expect_const(q, ctx, "QUANTILE q")?;
            if !(0.0..=1.0).contains(&qv) {
                return Err(err(format!("QUANTILE q must be in [0, 1], got {qv}")));
            }
            expect_const_positive(window, ctx, "QUANTILE window")?;
            Ok(Type::Num)
        }
        Expr::Hist { q, .. } => {
            let qv = expect_const(q, ctx, "HIST q")?;
            if !(0.0..=1.0).contains(&qv) {
                return Err(err(format!("HIST q must be in [0, 1], got {qv}")));
            }
            Ok(Type::Num)
        }
        Expr::Abs(x) => {
            expect_type(x, Type::Num, ctx, "ABS operand")?;
            Ok(Type::Num)
        }
        Expr::Clamp(x, lo, hi) => {
            expect_type(x, Type::Num, ctx, "CLAMP value")?;
            expect_type(lo, Type::Num, ctx, "CLAMP low bound")?;
            expect_type(hi, Type::Num, ctx, "CLAMP high bound")?;
            Ok(Type::Num)
        }
        Expr::Unary(UnOp::Neg, x) => {
            expect_type(x, Type::Num, ctx, "negation operand")?;
            Ok(Type::Num)
        }
        Expr::Unary(UnOp::Not, x) => {
            expect_type(x, Type::Bool, ctx, "'!' operand")?;
            Ok(Type::Bool)
        }
        Expr::Binary(op, l, r) => {
            if op.is_arithmetic() {
                expect_type(l, Type::Num, ctx, "arithmetic operand")?;
                expect_type(r, Type::Num, ctx, "arithmetic operand")?;
                Ok(Type::Num)
            } else if op.is_comparison() {
                let lt = type_of(l, ctx)?;
                let rt = type_of(r, ctx)?;
                if lt != rt {
                    return Err(err(format!(
                        "comparison operands have mismatched types ({lt:?} vs {rt:?})"
                    )));
                }
                if lt == Type::Bool && !matches!(op, BinOp::Eq | BinOp::Ne) {
                    return Err(err("booleans only support == and !=".into()));
                }
                Ok(Type::Bool)
            } else {
                expect_type(l, Type::Bool, ctx, "logical operand")?;
                expect_type(r, Type::Bool, ctx, "logical operand")?;
                Ok(Type::Bool)
            }
        }
    }
}

fn expect_type(e: &Expr, want: Type, ctx: &ExprCtx<'_>, what: &str) -> Result<()> {
    let got = type_of(e, ctx)?;
    if got != want {
        return Err(GuardrailError::check(
            ctx.guardrail,
            format!("{what} must be {want:?}, got {got:?}"),
        ));
    }
    Ok(())
}

fn expect_const(e: &Expr, ctx: &ExprCtx<'_>, what: &str) -> Result<f64> {
    const_fold(e).ok_or_else(|| {
        GuardrailError::check(
            ctx.guardrail,
            format!("{what} must be a compile-time constant"),
        )
    })
}

fn expect_const_positive(e: &Expr, ctx: &ExprCtx<'_>, what: &str) -> Result<f64> {
    let v = expect_const(e, ctx, what)?;
    if v.is_nan() || v <= 0.0 {
        return Err(GuardrailError::check(
            ctx.guardrail,
            format!("{what} must be positive, got {v}"),
        ));
    }
    Ok(v)
}

/// Evaluates a numeric constant expression (no loads, args, or aggregates).
pub fn const_fold(e: &Expr) -> Option<f64> {
    match e {
        Expr::Number(n) => Some(*n),
        Expr::Unary(UnOp::Neg, x) => Some(-const_fold(x)?),
        Expr::Abs(x) => Some(const_fold(x)?.abs()),
        Expr::Clamp(x, lo, hi) => {
            let (x, lo, hi) = (const_fold(x)?, const_fold(lo)?, const_fold(hi)?);
            Some(x.clamp(lo, hi.max(lo)))
        }
        Expr::Binary(op, l, r) if op.is_arithmetic() => {
            let (l, r) = (const_fold(l)?, const_fold(r)?);
            Some(match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => {
                    if r == 0.0 {
                        0.0
                    } else {
                        l / r
                    }
                }
                BinOp::Mod => {
                    if r == 0.0 {
                        0.0
                    } else {
                        l % r
                    }
                }
                _ => unreachable!("arithmetic filtered above"),
            })
        }
        _ => None,
    }
}

fn const_num(
    e: &Expr,
    bindings: &HashMap<String, f64>,
    guardrail: &str,
    what: &str,
) -> Result<f64> {
    let resolved = substitute_symbols(e, bindings, guardrail)?;
    const_fold(&resolved).ok_or_else(|| {
        GuardrailError::check(
            guardrail,
            format!("{what} must be a compile-time numeric constant"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parser::parse;

    fn check(src: &str) -> Result<CheckedSpec> {
        check_spec(parse(src)?)
    }

    #[test]
    fn listing_2_checks_with_default_bindings() {
        let spec = check(
            r#"guardrail low-false-submit {
                trigger: { TIMER(start_time, 1e9) },
                rule: { LOAD(false_submit_rate) <= 0.05 },
                action: { SAVE(ml_enabled, false) }
            }"#,
        )
        .unwrap();
        let g = &spec.checked[0];
        assert_eq!(g.timers.len(), 1);
        assert_eq!(g.timers[0].start, Nanos::ZERO);
        assert_eq!(g.timers[0].interval, Nanos::from_secs(1));
        assert_eq!(g.timers[0].stop, Nanos::MAX);
    }

    #[test]
    fn rule_must_be_boolean() {
        let err = check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { LOAD(x) + 1 }, action: { REPORT(m) } }",
        )
        .unwrap_err();
        assert!(format!("{err}").contains("boolean"), "{err}");
    }

    #[test]
    fn timer_interval_must_be_positive() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0, 0) }, rule: { true }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { TIMER(0, 1 - 2) }, rule: { true }, action: { REPORT(m) } }"
        )
        .is_err());
    }

    #[test]
    fn timer_stop_must_follow_start() {
        assert!(check(
            "guardrail g { trigger: { TIMER(5s, 1s, 2s) }, rule: { true }, action: { REPORT(m) } }"
        )
        .is_err());
        let ok = check(
            "guardrail g { trigger: { TIMER(1s, 1s, 10s) }, rule: { true }, action: { REPORT(m) } }",
        )
        .unwrap();
        assert_eq!(ok.checked[0].timers[0].stop, Nanos::from_secs(10));
    }

    #[test]
    fn arg_requires_function_trigger() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { ARG(0) < 5 }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { FUNCTION(f) }, rule: { ARG(0) < 5 }, action: { REPORT(m) } }"
        )
        .is_ok());
        // Mixed triggers: allowed (ARG reads 0 under TIMER evaluation).
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) FUNCTION(f) }, rule: { ARG(0) < 5 }, action: { REPORT(m) } }"
        )
        .is_ok());
    }

    #[test]
    fn unknown_symbol_suggests_load() {
        let err = check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { latency < 5 }, action: { REPORT(m) } }",
        )
        .unwrap_err();
        assert!(format!("{err}").contains("LOAD(latency)"), "{err}");
    }

    #[test]
    fn quantile_bounds_checked() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { QUANTILE(x, 1.5, 1s) < 5 }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { QUANTILE(x, 0.99, 1s) < 5 }, action: { REPORT(m) } }"
        )
        .is_ok());
        // Window must be a positive constant.
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { AVG(x, LOAD(w)) < 5 }, action: { REPORT(m) } }"
        )
        .is_err());
    }

    #[test]
    fn hist_q_bounds_checked() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { HIST(x, 1.5) < 5 }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { HIST(x, 0.99) < 5 }, action: { REPORT(m) } }"
        )
        .is_ok());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { HIST(x, LOAD(q)) < 5 }, action: { REPORT(m) } }"
        )
        .is_err(), "q must be constant");
    }

    #[test]
    fn boolean_comparisons_limited_to_equality() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true < false }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true == false }, action: { REPORT(m) } }"
        )
        .is_ok());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { LOAD(x) == true }, action: { REPORT(m) } }"
        )
        .is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true }, action: { REPORT(m) } }
             guardrail g { trigger: { TIMER(0,1) }, rule: { true }, action: { REPORT(m) } }"
        )
        .is_err());
    }

    #[test]
    fn custom_bindings_resolve() {
        let spec = parse(
            "guardrail g { trigger: { TIMER(warmup, tick) }, rule: { true }, action: { REPORT(m) } }",
        )
        .unwrap();
        let mut b = default_bindings();
        b.insert("warmup".into(), 5e9);
        b.insert("tick".into(), 1e6);
        let checked = check_spec_with_bindings(spec, &b).unwrap();
        assert_eq!(checked.checked[0].timers[0].start, Nanos::from_secs(5));
        assert_eq!(checked.checked[0].timers[0].interval, Nanos::from_millis(1));
    }

    #[test]
    fn const_fold_arithmetic() {
        use crate::spec::ast::Expr as E;
        assert_eq!(
            const_fold(&E::bin(BinOp::Div, E::Number(1.0), E::Number(0.0))),
            Some(0.0)
        );
        assert_eq!(
            const_fold(&E::bin(BinOp::Mod, E::Number(7.0), E::Number(4.0))),
            Some(3.0)
        );
        assert_eq!(const_fold(&E::Load("x".into())), None);
    }

    #[test]
    fn deprioritize_steps_and_record_are_numeric() {
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true }, action: { DEPRIORITIZE(t, true) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true }, action: { RECORD(k, false) } }"
        )
        .is_err());
        assert!(check(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true }, action: { DEPRIORITIZE(t, 5) RECORD(k, LOAD(x) * 2) } }"
        )
        .is_ok());
    }
}
