//! Token definitions for the guardrail language.

use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// The kinds of token the lexer produces.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`guardrail`, `LOAD`, `false_submit_rate`, ...).
    ///
    /// Guardrail names may contain `-` (as in the paper's
    /// `low-false-submit`); the lexer joins ident-minus-ident sequences only
    /// when no whitespace separates them.
    Ident(String),
    /// A numeric literal (including scientific notation like `1e9`).
    Number(f64),
    /// A duration literal, normalized to nanoseconds (`1s` → `1e9`).
    Duration(f64),
    /// A double-quoted string literal.
    Str(String),
    /// `true`.
    True,
    /// `false`.
    False,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Duration(n) => write!(f, "duration {n}ns"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::True => write!(f, "'true'"),
            TokenKind::False => write!(f, "'false'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Le => write!(f, "'<='"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Ge => write!(f, "'>='"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::EqEq => write!(f, "'=='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::AndAnd => write!(f, "'&&'"),
            TokenKind::OrOr => write!(f, "'||'"),
            TokenKind::Bang => write!(f, "'!'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Percent => write!(f, "'%'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
