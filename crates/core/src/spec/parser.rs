//! The recursive-descent parser for guardrail specifications.

use crate::error::{GuardrailError, Result};
use crate::spec::ast::{ActionStmt, AggKind, BinOp, Expr, Guardrail, Spec, Trigger, UnOp};
use crate::spec::lexer::lex;
use crate::spec::token::{Token, TokenKind};

/// Parses guardrail source text into a [`Spec`].
///
/// # Examples
///
/// ```
/// let spec = guardrails::spec::parse(
///     "guardrail g { trigger: { TIMER(0, 1s) }, rule: { LOAD(x) < 1 }, action: { REPORT(\"hi\") } }",
/// ).unwrap();
/// assert_eq!(spec.guardrails[0].name, "g");
/// ```
pub fn parse(source: &str) -> Result<Spec> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.spec()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> GuardrailError {
        let t = self.peek();
        GuardrailError::parse(t.line, t.col, message.into())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Skips optional `,` / `;` separators between section entries.
    fn skip_separators(&mut self) {
        while matches!(self.peek().kind, TokenKind::Comma | TokenKind::Semicolon) {
            self.bump();
        }
    }

    fn name(&mut self) -> Result<String> {
        match self.bump().kind {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::Str(s) => Ok(s),
            other => Err(self.err(format!("expected a name, found {other}"))),
        }
    }

    fn spec(mut self) -> Result<Spec> {
        let mut guardrails = Vec::new();
        loop {
            self.skip_separators();
            if self.peek().kind == TokenKind::Eof {
                break;
            }
            guardrails.push(self.guardrail()?);
        }
        if guardrails.is_empty() {
            return Err(self.err("expected at least one guardrail"));
        }
        Ok(Spec { guardrails })
    }

    fn guardrail(&mut self) -> Result<Guardrail> {
        match self.bump().kind {
            TokenKind::Ident(kw) if kw == "guardrail" => {}
            other => return Err(self.err(format!("expected 'guardrail', found {other}"))),
        }
        let name = self.name()?;
        self.expect(&TokenKind::LBrace)?;
        let mut triggers = Vec::new();
        let mut rules = Vec::new();
        let mut actions = Vec::new();
        loop {
            self.skip_separators();
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            let section = self.name()?;
            self.expect(&TokenKind::Colon)?;
            self.expect(&TokenKind::LBrace)?;
            match section.as_str() {
                "trigger" => loop {
                    self.skip_separators();
                    if self.eat(&TokenKind::RBrace) {
                        break;
                    }
                    triggers.push(self.trigger()?);
                },
                "rule" => loop {
                    self.skip_separators();
                    if self.eat(&TokenKind::RBrace) {
                        break;
                    }
                    rules.push(self.expr()?);
                },
                "action" => loop {
                    self.skip_separators();
                    if self.eat(&TokenKind::RBrace) {
                        break;
                    }
                    actions.push(self.action()?);
                },
                other => {
                    return Err(self.err(format!(
                        "unknown section '{other}' (expected trigger/rule/action)"
                    )))
                }
            }
        }
        if triggers.is_empty() {
            return Err(self.err(format!("guardrail '{name}' has no triggers")));
        }
        if rules.is_empty() {
            return Err(self.err(format!("guardrail '{name}' has no rules")));
        }
        if actions.is_empty() {
            return Err(self.err(format!("guardrail '{name}' has no actions")));
        }
        Ok(Guardrail {
            name,
            triggers,
            rules,
            actions,
        })
    }

    fn trigger(&mut self) -> Result<Trigger> {
        let kind = self.name()?;
        self.expect(&TokenKind::LParen)?;
        let trigger = match kind.as_str() {
            "TIMER" => {
                let start = self.expr()?;
                self.expect(&TokenKind::Comma)?;
                let interval = self.expr()?;
                let stop = if self.eat(&TokenKind::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                Trigger::Timer {
                    start,
                    interval,
                    stop,
                }
            }
            "FUNCTION" => Trigger::Function { hook: self.name()? },
            other => {
                return Err(self.err(format!(
                    "unknown trigger '{other}' (expected TIMER or FUNCTION)"
                )))
            }
        };
        self.expect(&TokenKind::RParen)?;
        Ok(trigger)
    }

    fn action(&mut self) -> Result<ActionStmt> {
        let kind = self.name()?;
        self.expect(&TokenKind::LParen)?;
        let action = match kind.as_str() {
            "REPORT" => {
                let message = match self.bump().kind {
                    TokenKind::Str(s) => s,
                    TokenKind::Ident(s) => s,
                    other => return Err(self.err(format!("expected message, found {other}"))),
                };
                let mut keys = Vec::new();
                while self.eat(&TokenKind::Comma) {
                    keys.push(self.name()?);
                }
                ActionStmt::Report { message, keys }
            }
            "REPLACE" => {
                let slot = self.name()?;
                self.expect(&TokenKind::Comma)?;
                let variant = self.name()?;
                ActionStmt::Replace { slot, variant }
            }
            "RETRAIN" => ActionStmt::Retrain {
                model: self.name()?,
            },
            "DEPRIORITIZE" => {
                let target = self.name()?;
                let steps = if self.eat(&TokenKind::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                ActionStmt::Deprioritize { target, steps }
            }
            "SAVE" => {
                let key = self.name()?;
                self.expect(&TokenKind::Comma)?;
                ActionStmt::Save {
                    key,
                    value: self.expr()?,
                }
            }
            "RECORD" => {
                let key = self.name()?;
                self.expect(&TokenKind::Comma)?;
                ActionStmt::Record {
                    key,
                    value: self.expr()?,
                }
            }
            other => {
                return Err(self.err(format!(
                    "unknown action '{other}' (expected REPORT/REPLACE/RETRAIN/DEPRIORITIZE/SAVE/RECORD)"
                )))
            }
        };
        self.expect(&TokenKind::RParen)?;
        Ok(action)
    }

    // Expression precedence: || < && < ! < comparisons < +- < */% < unary.

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Bang) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Le => BinOp::Le,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            // Fold literal negation so `-5` is the literal -5 (and negative
            // numbers round-trip through the pretty-printer structurally).
            match self.peek().kind {
                TokenKind::Number(n) | TokenKind::Duration(n) => {
                    self.bump();
                    return Ok(Expr::Number(-n));
                }
                _ => {}
            }
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump().kind {
            TokenKind::Number(n) => Ok(Expr::Number(n)),
            TokenKind::Duration(n) => Ok(Expr::Number(n)),
            TokenKind::True => Ok(Expr::Bool(true)),
            TokenKind::False => Ok(Expr::Bool(false)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.peek().kind != TokenKind::LParen {
                    return Ok(Expr::Symbol(name));
                }
                self.builtin_call(&name)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }

    fn builtin_call(&mut self, name: &str) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let agg = match name {
            "AVG" => Some(AggKind::Avg),
            "SUM" => Some(AggKind::Sum),
            "COUNT" => Some(AggKind::Count),
            "MIN" => Some(AggKind::Min),
            "MAX" => Some(AggKind::Max),
            "STDDEV" => Some(AggKind::StdDev),
            "RATE" => Some(AggKind::Rate),
            _ => None,
        };
        let expr = if let Some(kind) = agg {
            let key = self.name()?;
            self.expect(&TokenKind::Comma)?;
            let window = self.expr()?;
            Expr::Aggregate {
                kind,
                key,
                window: Box::new(window),
            }
        } else {
            match name {
                "LOAD" => Expr::Load(self.name()?),
                "EWMA" => Expr::Ewma(self.name()?),
                "DELTA" => Expr::Delta(self.name()?),
                "ARG" => match self.bump().kind {
                    TokenKind::Number(n) if n >= 0.0 && n.fract() == 0.0 => Expr::Arg(n as u32),
                    other => {
                        return Err(self.err(format!(
                            "ARG expects a non-negative integer index, found {other}"
                        )))
                    }
                },
                "ABS" => Expr::Abs(Box::new(self.expr()?)),
                "CLAMP" => {
                    let x = self.expr()?;
                    self.expect(&TokenKind::Comma)?;
                    let lo = self.expr()?;
                    self.expect(&TokenKind::Comma)?;
                    let hi = self.expr()?;
                    Expr::Clamp(Box::new(x), Box::new(lo), Box::new(hi))
                }
                "HIST" => {
                    let key = self.name()?;
                    self.expect(&TokenKind::Comma)?;
                    let q = self.expr()?;
                    Expr::Hist {
                        key,
                        q: Box::new(q),
                    }
                }
                "QUANTILE" => {
                    let key = self.name()?;
                    self.expect(&TokenKind::Comma)?;
                    let q = self.expr()?;
                    self.expect(&TokenKind::Comma)?;
                    let window = self.expr()?;
                    Expr::Quantile {
                        key,
                        q: Box::new(q),
                        window: Box::new(window),
                    }
                }
                other => return Err(self.err(format!("unknown builtin '{other}'"))),
            }
        };
        self.expect(&TokenKind::RParen)?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact spec text from the paper's Listing 2.
    pub const LISTING_2: &str = r#"
guardrail low-false-submit {
    trigger: {
        TIMER(start_time, 1e9) // Periodically check every 1s.
    },
    rule: {
        LOAD(false_submit_rate) <= 0.05
    },
    action: {
        SAVE(ml_enabled, false)
    }
}
"#;

    #[test]
    fn parses_listing_2_verbatim() {
        let spec = parse(LISTING_2).unwrap();
        assert_eq!(spec.guardrails.len(), 1);
        let g = &spec.guardrails[0];
        assert_eq!(g.name, "low-false-submit");
        assert!(matches!(
            &g.triggers[0],
            Trigger::Timer { interval, .. } if *interval == Expr::Number(1e9)
        ));
        assert_eq!(
            g.rules[0],
            Expr::bin(
                BinOp::Le,
                Expr::Load("false_submit_rate".into()),
                Expr::Number(0.05)
            )
        );
        assert_eq!(
            g.actions[0],
            ActionStmt::Save {
                key: "ml_enabled".into(),
                value: Expr::Bool(false)
            }
        );
    }

    #[test]
    fn precedence_is_sane() {
        let spec = parse(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { 1 + 2 * 3 < 10 && !false }, action: { REPORT(m) } }",
        )
        .unwrap();
        let rule = &spec.guardrails[0].rules[0];
        // (1 + (2*3)) < 10) && (!false)
        match rule {
            Expr::Binary(BinOp::And, lhs, rhs) => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Lt, _, _)));
                assert!(matches!(**rhs, Expr::Unary(UnOp::Not, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn multiple_triggers_rules_actions() {
        let spec = parse(
            r#"guardrail g {
                trigger: { TIMER(0, 1s, 10s), FUNCTION(io_submit) },
                rule: { LOAD(a) < 1; AVG(lat, 10s) < 2000 },
                action: {
                    REPORT("violated", a, lat)
                    REPLACE(io_policy, heuristic)
                    RETRAIN(latency_model)
                    DEPRIORITIZE(heaviest_task, 5)
                    RECORD(viol, 1)
                }
            }"#,
        )
        .unwrap();
        let g = &spec.guardrails[0];
        assert_eq!(g.triggers.len(), 2);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.actions.len(), 5);
        assert!(matches!(&g.triggers[1], Trigger::Function { hook } if hook == "io_submit"));
        assert!(
            matches!(&g.actions[1], ActionStmt::Replace { slot, variant }
            if slot == "io_policy" && variant == "heuristic")
        );
    }

    #[test]
    fn duration_literals_in_rules() {
        let spec = parse(
            "guardrail g { trigger: { TIMER(0, 500ms) }, rule: { QUANTILE(lat, 0.99, 10s) < 50ms }, action: { REPORT(m) } }",
        )
        .unwrap();
        match &spec.guardrails[0].rules[0] {
            Expr::Binary(BinOp::Lt, q, bound) => {
                assert!(matches!(**q, Expr::Quantile { .. }));
                assert_eq!(**bound, Expr::Number(50e6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(parse("guardrail g { rule: { 1 < 2 }, action: { REPORT(m) } }").is_err());
        assert!(parse("guardrail g { trigger: { TIMER(0,1) }, action: { REPORT(m) } }").is_err());
        assert!(parse("guardrail g { trigger: { TIMER(0,1) }, rule: { 1 < 2 } }").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unknown_constructs_rejected() {
        assert!(parse(
            "guardrail g { trigger: { CRON(0) }, rule: { true }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(parse(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { FOO(x) }, action: { REPORT(m) } }"
        )
        .is_err());
        assert!(parse(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true }, action: { EXPLODE(m) } }"
        )
        .is_err());
        assert!(parse("guardrail g { wibble: { } }").is_err());
    }

    #[test]
    fn arg_index_must_be_integer() {
        assert!(parse(
            "guardrail g { trigger: { FUNCTION(f) }, rule: { ARG(0.5) < 1 }, action: { REPORT(m) } }"
        )
        .is_err());
        let spec = parse(
            "guardrail g { trigger: { FUNCTION(f) }, rule: { ARG(2) < 1 }, action: { REPORT(m) } }",
        )
        .unwrap();
        assert_eq!(
            spec.guardrails[0].rules[0],
            Expr::bin(BinOp::Lt, Expr::Arg(2), Expr::Number(1.0))
        );
    }

    #[test]
    fn two_guardrails_in_one_spec() {
        let spec = parse(
            "guardrail a { trigger: { TIMER(0,1) }, rule: { true }, action: { REPORT(m) } }
             guardrail b { trigger: { TIMER(0,1) }, rule: { true }, action: { REPORT(m) } }",
        )
        .unwrap();
        assert_eq!(spec.guardrails.len(), 2);
        assert_eq!(spec.guardrails[1].name, "b");
    }

    #[test]
    fn hist_builtin_parses() {
        let spec = parse(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { HIST(fault_lat, 0.99) <= 50ms }, action: { REPORT(m) } }",
        )
        .unwrap();
        match &spec.guardrails[0].rules[0] {
            Expr::Binary(BinOp::Le, lhs, _) => {
                assert!(matches!(**lhs, Expr::Hist { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn string_hook_names_allowed() {
        let spec = parse(
            r#"guardrail g { trigger: { FUNCTION("submit_bio") }, rule: { true }, action: { REPORT(m) } }"#,
        )
        .unwrap();
        assert!(matches!(&spec.guardrails[0].triggers[0],
            Trigger::Function { hook } if hook == "submit_bio"));
    }
}
