//! The hand-rolled lexer for guardrail specifications.

use crate::error::{GuardrailError, Result};
use crate::spec::token::{Token, TokenKind};

/// Lexes guardrail source text into tokens (ending with [`TokenKind::Eof`]).
///
/// `//` comments run to end of line. Identifiers may contain internal `-`
/// when immediately followed by another identifier character, so the paper's
/// `low-false-submit` lexes as one name while `LOAD(x) - 1` still lexes as a
/// subtraction. Duration literals (`1s`, `20ms`, `100us`, `5ns`) are
/// normalized to nanoseconds.
///
/// # Examples
///
/// ```
/// use guardrails::spec::{lex, TokenKind};
///
/// let toks = lex("LOAD(rate) <= 0.05").unwrap();
/// assert_eq!(toks[0].kind, TokenKind::Ident("LOAD".into()));
/// assert_eq!(toks[4].kind, TokenKind::Le);
/// assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        // Reserve roughly one token per four source bytes.
        let mut tokens = Vec::with_capacity(self.source.len() / 4 + 1);
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(tokens);
            };
            let kind = match c {
                '{' => self.single(TokenKind::LBrace),
                '}' => self.single(TokenKind::RBrace),
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                ',' => self.single(TokenKind::Comma),
                ':' => self.single(TokenKind::Colon),
                ';' => self.single(TokenKind::Semicolon),
                '+' => self.single(TokenKind::Plus),
                '*' => self.single(TokenKind::Star),
                '%' => self.single(TokenKind::Percent),
                '/' => self.single(TokenKind::Slash),
                '-' => self.single(TokenKind::Minus),
                '<' => self.maybe_eq(TokenKind::Lt, TokenKind::Le),
                '>' => self.maybe_eq(TokenKind::Gt, TokenKind::Ge),
                '!' => self.maybe_eq(TokenKind::Bang, TokenKind::Ne),
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::EqEq
                    } else {
                        return Err(GuardrailError::lex(line, col, "expected '==' after '='"));
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        TokenKind::AndAnd
                    } else {
                        return Err(GuardrailError::lex(line, col, "expected '&&' after '&'"));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        TokenKind::OrOr
                    } else {
                        return Err(GuardrailError::lex(line, col, "expected '||' after '|'"));
                    }
                }
                '"' => self.string(line, col)?,
                c if c.is_ascii_digit()
                    || (c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) =>
                {
                    self.number(line, col)?
                }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                other => {
                    return Err(GuardrailError::lex(
                        line,
                        col,
                        format!("unexpected character '{other}'"),
                    ))
                }
            };
            tokens.push(Token { kind, line, col });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn maybe_eq(&mut self, bare: TokenKind, with_eq: TokenKind) -> TokenKind {
        self.bump();
        if self.peek() == Some('=') {
            self.bump();
            with_eq
        } else {
            bare
        }
    }

    fn string(&mut self, line: u32, col: u32) -> Result<TokenKind> {
        self.bump(); // Opening quote.
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => {
                        return Err(GuardrailError::lex(
                            line,
                            col,
                            format!("invalid escape {other:?} in string"),
                        ))
                    }
                },
                Some(c) => s.push(c),
                None => {
                    return Err(GuardrailError::lex(
                        line,
                        col,
                        "unterminated string literal",
                    ))
                }
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) -> Result<TokenKind> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '.' || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else if c == 'e' || c == 'E' {
                // Scientific notation only when followed by digit or sign+digit;
                // otherwise this is a unit/ident boundary.
                let next = self.peek2();
                let is_exp = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('+') | Some('-') => self
                        .chars
                        .get(self.pos + 2)
                        .is_some_and(|d| d.is_ascii_digit()),
                    _ => false,
                };
                if !is_exp {
                    break;
                }
                text.push('e');
                self.bump();
                if let Some(sign @ ('+' | '-')) = self.peek() {
                    text.push(sign);
                    self.bump();
                }
            } else {
                break;
            }
        }
        let value: f64 = text
            .parse()
            .map_err(|_| GuardrailError::lex(line, col, format!("invalid number '{text}'")))?;
        // Duration suffix: `ns`, `us`, `ms`, `s`. Longest match first; the
        // suffix must end the identifier run (so `3smooth` is an error, not
        // the duration `3s` followed by `mooth`).
        let mut suffix = String::new();
        let save = (self.pos, self.line, self.col);
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let scale = match suffix.as_str() {
            "" => {
                return Ok(TokenKind::Number(value));
            }
            "ns" => 1.0,
            "us" => 1e3,
            "ms" => 1e6,
            "s" => 1e9,
            other => {
                (self.pos, self.line, self.col) = save;
                return Err(GuardrailError::lex(
                    line,
                    col,
                    format!("invalid numeric suffix '{other}' (expected ns/us/ms/s)"),
                ));
            }
        };
        Ok(TokenKind::Duration(value * scale))
    }

    fn ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else if (c == '-' || c == '.')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_alphanumeric() || d == '_')
            {
                // Hyphenated names like `low-false-submit` and dotted
                // feature-store keys like `io_model.input.psi`.
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            _ => TokenKind::Ident(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_listing2_header() {
        let k = kinds("guardrail low-false-submit {");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("guardrail".into()),
                TokenKind::Ident("low-false-submit".into()),
                TokenKind::LBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hyphen_outside_ident_is_minus() {
        let k = kinds("x - 1");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Minus,
                TokenKind::Number(1.0),
                TokenKind::Eof,
            ]
        );
        // No space: still subtraction because `1` follows the minus.
        let k = kinds("LOAD(x)-1");
        assert!(k.contains(&TokenKind::Minus));
    }

    #[test]
    fn scientific_notation_and_durations() {
        assert_eq!(kinds("1e9")[0], TokenKind::Number(1e9));
        assert_eq!(kinds("1.5e-3")[0], TokenKind::Number(1.5e-3));
        assert_eq!(kinds("1s")[0], TokenKind::Duration(1e9));
        assert_eq!(kinds("20ms")[0], TokenKind::Duration(2e7));
        assert_eq!(kinds("100us")[0], TokenKind::Duration(1e5));
        assert_eq!(kinds("7ns")[0], TokenKind::Duration(7.0));
        assert_eq!(kinds("1_000")[0], TokenKind::Number(1000.0));
    }

    #[test]
    fn bad_suffix_is_an_error() {
        assert!(lex("3smooth").is_err());
        assert!(lex("3kb").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("1 // trailing comment\n2");
        assert_eq!(
            k,
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators_lex() {
        let k = kinds("<= >= < > == != && || ! + - * / %");
        assert_eq!(
            k,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""hello\n\"world\"""#)[0],
            TokenKind::Str("hello\n\"world\"".into())
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn single_ampersand_and_pipe_are_errors() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn leading_dot_number() {
        assert_eq!(kinds(".5")[0], TokenKind::Number(0.5));
    }

    #[test]
    fn true_false_keywords() {
        assert_eq!(
            kinds("true false"),
            vec![TokenKind::True, TokenKind::False, TokenKind::Eof]
        );
    }
}
