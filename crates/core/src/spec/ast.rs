//! The abstract syntax tree for guardrail specifications.

/// A parsed specification: one or more guardrails.
#[derive(Clone, Debug, PartialEq)]
pub struct Spec {
    /// The guardrails, in source order.
    pub guardrails: Vec<Guardrail>,
}

/// One `guardrail name { trigger: ..., rule: ..., action: ... }` block.
#[derive(Clone, Debug, PartialEq)]
pub struct Guardrail {
    /// The guardrail's name (may be hyphenated, e.g. `low-false-submit`).
    pub name: String,
    /// When to evaluate the rules (at least one).
    pub triggers: Vec<Trigger>,
    /// What must hold; multiple rules are a conjunction but are reported
    /// individually on violation (at least one).
    pub rules: Vec<Expr>,
    /// What to do on violation (at least one).
    pub actions: Vec<ActionStmt>,
}

/// A trigger determining *when* rules are evaluated (§4.1).
#[derive(Clone, Debug, PartialEq)]
pub enum Trigger {
    /// `TIMER(start, interval[, stop])`: periodic evaluation. All three are
    /// expressions so specs can write `TIMER(start_time, 1e9)` with symbolic
    /// bindings; they must be compile-time constants.
    Timer {
        /// First evaluation time (absolute nanoseconds).
        start: Expr,
        /// Evaluation period in nanoseconds.
        interval: Expr,
        /// Optional last evaluation time.
        stop: Option<Expr>,
    },
    /// `FUNCTION(name)`: evaluate on every firing of the named tracepoint.
    Function {
        /// The tracepoint/function name.
        hook: String,
    },
}

/// A corrective action statement (§3.2, Figure 1 right table).
#[derive(Clone, Debug, PartialEq)]
pub enum ActionStmt {
    /// `REPORT(message, key...)` — A1: log the violation and the listed
    /// feature-store keys for offline analysis.
    Report {
        /// Human-readable message.
        message: String,
        /// Feature-store keys whose current values are recorded.
        keys: Vec<String>,
    },
    /// `REPLACE(slot, variant)` — A2: swap the policy in `slot` to `variant`
    /// (e.g. a known-safe fallback).
    Replace {
        /// The policy slot name.
        slot: String,
        /// The variant to activate.
        variant: String,
    },
    /// `RETRAIN(model)` — A3: enqueue an asynchronous retraining request.
    Retrain {
        /// The model name.
        model: String,
    },
    /// `DEPRIORITIZE(target[, steps])` — A4: demote (or with `steps >= 40`,
    /// kill) the targeted task(s). `target` is a task-selection key the
    /// embedding system interprets (e.g. `heaviest_memory`).
    Deprioritize {
        /// Task-selection key.
        target: String,
        /// Nice-level demotion amount (defaults to 5).
        steps: Option<Expr>,
    },
    /// `SAVE(key, expr)` — write a scalar into the feature store (§4.3).
    Save {
        /// Destination key.
        key: String,
        /// Value expression.
        value: Expr,
    },
    /// `RECORD(key, expr)` — append a sample to a windowed series.
    Record {
        /// Destination series key.
        key: String,
        /// Sample expression.
        value: Expr,
    },
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (total: division by zero yields 0, like eBPF).
    Div,
    /// `%` (total: modulo by zero yields 0).
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Returns `true` for comparison operators (numeric operands, boolean result).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Returns `true` for boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Returns `true` for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
}

/// A windowed aggregate over a feature-store series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// Mean of samples in the window.
    Avg,
    /// Sum of samples in the window.
    Sum,
    /// Number of samples in the window.
    Count,
    /// Minimum sample in the window.
    Min,
    /// Maximum sample in the window.
    Max,
    /// Sample standard deviation over the window.
    StdDev,
    /// Samples per second over the window.
    Rate,
}

impl AggKind {
    /// The spec-language name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Avg => "AVG",
            AggKind::Sum => "SUM",
            AggKind::Count => "COUNT",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
            AggKind::StdDev => "STDDEV",
            AggKind::Rate => "RATE",
        }
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A numeric literal (durations are normalized to nanoseconds).
    Number(f64),
    /// A boolean literal.
    Bool(bool),
    /// A named symbolic constant in trigger arguments (`start_time`, ...).
    Symbol(String),
    /// `LOAD(key)`: read a scalar from the feature store (missing keys read 0).
    Load(String),
    /// `ARG(i)`: the `i`-th argument of the triggering tracepoint (0 under TIMER).
    Arg(u32),
    /// A windowed aggregate, e.g. `AVG(latency, 10s)`.
    Aggregate {
        /// Which statistic.
        kind: AggKind,
        /// The series key.
        key: String,
        /// Window length in nanoseconds.
        window: Box<Expr>,
    },
    /// `QUANTILE(key, q, window)`.
    Quantile {
        /// The series key.
        key: String,
        /// The quantile in `[0, 1]`.
        q: Box<Expr>,
        /// Window length in nanoseconds.
        window: Box<Expr>,
    },
    /// `EWMA(key)`: the store's exponentially weighted moving average.
    Ewma(String),
    /// `HIST(key, q)`: a quantile of the store's log-bucketed histogram
    /// (O(1) state, unlike windowed `QUANTILE`).
    Hist {
        /// The histogram key.
        key: String,
        /// The quantile in `[0, 1]`.
        q: Box<Expr>,
    },
    /// `DELTA(key)`: change of the scalar since this monitor last evaluated.
    Delta(String),
    /// `ABS(x)`.
    Abs(Box<Expr>),
    /// `CLAMP(x, lo, hi)`.
    Clamp(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Walks the expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Aggregate { window, .. } => window.walk(f),
            Expr::Quantile { q, window, .. } => {
                q.walk(f);
                window.walk(f);
            }
            Expr::Hist { q, .. } => q.walk(f),
            Expr::Abs(x) => x.walk(f),
            Expr::Clamp(x, lo, hi) => {
                x.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Unary(_, x) => x.walk(f),
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            _ => {}
        }
    }

    /// Collects every feature-store key the expression reads.
    pub fn keys_read(&self) -> Vec<String> {
        let mut keys = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Load(k) | Expr::Ewma(k) | Expr::Delta(k) => keys.push(k.clone()),
            Expr::Aggregate { key, .. } | Expr::Quantile { key, .. } | Expr::Hist { key, .. } => {
                keys.push(key.clone())
            }
            _ => {}
        });
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Lt.is_arithmetic());
    }

    #[test]
    fn keys_read_collects_and_dedups() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Lt, Expr::Load("a".into()), Expr::Number(1.0)),
            Expr::bin(
                BinOp::Lt,
                Expr::Aggregate {
                    kind: AggKind::Avg,
                    key: "b".into(),
                    window: Box::new(Expr::Number(1e9)),
                },
                Expr::Load("a".into()),
            ),
        );
        assert_eq!(e.keys_read(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Clamp(
            Box::new(Expr::Number(1.0)),
            Box::new(Expr::Number(0.0)),
            Box::new(Expr::Abs(Box::new(Expr::Number(-2.0)))),
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn agg_names_round() {
        for k in [
            AggKind::Avg,
            AggKind::Sum,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::StdDev,
            AggKind::Rate,
        ] {
            assert!(!k.name().is_empty());
        }
    }
}
