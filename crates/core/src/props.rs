//! Synthesized guardrail templates for the property taxonomy P1–P6.
//!
//! §3.3: "For learned policies, many of these can be determined
//! automatically, e.g., the performance metric to track can be extracted
//! from the reward function." This module is that synthesis path: given a
//! few parameters, each builder emits canonical guardrail source text (which
//! the developer can review, edit, and install). The builders cover every
//! row of Figure 1's property table.
//!
//! §3.3 also suggests deploying "guardrails with relaxed properties and
//! automatically tighten\[ing\] the properties based on system behavior" —
//! [`Calibrator`] implements that: thresholds live in the feature store
//! (rules reference them via `LOAD`), and the calibrator walks them from a
//! relaxed starting point toward observed steady-state behaviour.

use simkernel::Nanos;

use crate::store::FeatureStore;

fn fmt_ns(d: Nanos) -> String {
    format!("{}", d.as_nanos())
}

/// P1: in-distribution inputs. Bounds the PSI score a
/// [`crate::stats::DriftDetector`] publishes under `<model>.input.psi`.
///
/// "All models. Prolonged sequences of out-of-distribution data may indicate
/// domain shift and require retraining" (Figure 1) — hence the default
/// action set: report, then retrain.
pub fn p1_in_distribution(name: &str, model: &str, max_psi: f64, check_every: Nanos) -> String {
    format!(
        r#"guardrail {name} {{
    trigger: {{ TIMER(0, {interval}) }},
    rule: {{ LOAD({model}.input.psi) <= {max_psi} }},
    action: {{
        REPORT("input distribution shifted", {model}.input.psi, {model}.input.oob_fraction)
        RETRAIN({model})
    }}
}}
"#,
        interval = fmt_ns(check_every),
    )
}

/// P2: robustness of decisions. Bounds the sensitivity gain a
/// [`crate::stats::SensitivityProbe`] publishes under `<model>.gain`.
pub fn p2_robustness(name: &str, model: &str, max_gain: f64, check_every: Nanos) -> String {
    format!(
        r#"guardrail {name} {{
    trigger: {{ TIMER(0, {interval}) }},
    rule: {{ LOAD({model}.gain) <= {max_gain} }},
    action: {{
        REPORT("model output is noise-sensitive", {model}.gain)
        RETRAIN({model})
    }}
}}
"#,
        interval = fmt_ns(check_every),
    )
}

/// P3: out-of-bounds outputs. Checks every decision (FUNCTION trigger on the
/// decision tracepoint, output as `ARG(0)`) against `[lo, hi]` and falls
/// back to the safe policy on violation.
pub fn p3_output_bounds(name: &str, hook: &str, slot: &str, lo: f64, hi: f64) -> String {
    format!(
        r#"guardrail {name} {{
    trigger: {{ FUNCTION({hook}) }},
    rule: {{ ARG(0) >= {lo} && ARG(0) <= {hi} }},
    action: {{
        REPORT("out-of-bounds decision")
        REPLACE({slot}, fallback)
    }}
}}
"#,
    )
}

/// P4: decision quality. Requires the model's windowed accuracy (published
/// under `<model>.accuracy`) to beat `min_accuracy` — the paper's example is
/// "accuracy of the classifier > 90% over a time window of a given size".
pub fn p4_decision_quality(
    name: &str,
    model: &str,
    slot: &str,
    min_accuracy: f64,
    window: Nanos,
    check_every: Nanos,
) -> String {
    format!(
        r#"guardrail {name} {{
    trigger: {{ TIMER({window}, {interval}) }},
    rule: {{ AVG({model}.accuracy, {window}) >= {min_accuracy} }},
    action: {{
        REPORT("decision quality below threshold", {model}.accuracy)
        REPLACE({slot}, fallback)
    }}
}}
"#,
        window = fmt_ns(window),
        interval = fmt_ns(check_every),
    )
}

/// P5: decision overhead. Requires windowed inference cost (published under
/// `<model>.inference_ns`) to stay below the windowed gain the policy
/// delivers (published under `<model>.gain_ns`).
pub fn p5_decision_overhead(
    name: &str,
    model: &str,
    slot: &str,
    window: Nanos,
    check_every: Nanos,
) -> String {
    format!(
        r#"guardrail {name} {{
    trigger: {{ TIMER({window}, {interval}) }},
    rule: {{ SUM({model}.inference_ns, {window}) <= SUM({model}.gain_ns, {window}) }},
    action: {{
        REPORT("inference overhead exceeds policy gains")
        REPLACE({slot}, fallback)
    }}
}}
"#,
        window = fmt_ns(window),
        interval = fmt_ns(check_every),
    )
}

/// P6: fairness and liveness. Bounds the published maximum task wait time
/// (`<subsystem>.max_wait_ns`) — the paper's example: "No ready task should
/// be starved for more than 100ms" — and deprioritizes the dominant task.
pub fn p6_starvation_freedom(
    name: &str,
    subsystem: &str,
    max_wait: Nanos,
    check_every: Nanos,
) -> String {
    format!(
        r#"guardrail {name} {{
    trigger: {{ TIMER(0, {interval}) }},
    rule: {{ LOAD({subsystem}.max_wait_ns) <= {max_wait} }},
    action: {{
        REPORT("task starvation detected", {subsystem}.max_wait_ns)
        DEPRIORITIZE({subsystem}.dominant, 5)
    }}
}}
"#,
        max_wait = fmt_ns(max_wait),
        interval = fmt_ns(check_every),
    )
}

/// Auto-tightening of guardrail thresholds (§3.3).
///
/// The threshold lives in the feature store at `threshold_key` (the rule
/// reads it with `LOAD`). Starting relaxed, each [`Calibrator::step`] moves
/// the threshold toward `headroom ×` the observed steady-state value, never
/// tightening past `floor`.
///
/// # Examples
///
/// ```
/// use guardrails::props::Calibrator;
/// use guardrails::FeatureStore;
///
/// let store = FeatureStore::new();
/// let mut cal = Calibrator::new("thr", 100.0, 1.5, 0.5, 0.0);
/// cal.install(&store);
/// assert_eq!(store.load("thr"), Some(100.0));
/// // Observed steady state is ~10, so the threshold walks toward 15.
/// for _ in 0..20 {
///     cal.step(&store, 10.0);
/// }
/// assert!(store.load("thr").unwrap() < 20.0);
/// ```
#[derive(Clone, Debug)]
pub struct Calibrator {
    key: String,
    relaxed: f64,
    headroom: f64,
    rate: f64,
    floor: f64,
}

impl Calibrator {
    /// Creates a calibrator for `threshold_key`.
    ///
    /// - `relaxed`: the safe initial threshold.
    /// - `headroom`: target multiple of the observed value (> 1).
    /// - `rate`: per-step fraction of the gap to close, in `(0, 1]`.
    /// - `floor`: the tightest allowed threshold.
    pub fn new(threshold_key: &str, relaxed: f64, headroom: f64, rate: f64, floor: f64) -> Self {
        Calibrator {
            key: threshold_key.to_string(),
            relaxed,
            headroom: headroom.max(1.0),
            rate: rate.clamp(1e-6, 1.0),
            floor,
        }
    }

    /// Writes the relaxed threshold into the store.
    pub fn install(&self, store: &FeatureStore) {
        store.save(&self.key, self.relaxed);
    }

    /// Moves the threshold toward `headroom × observed`, returning the new
    /// threshold. Only ever tightens (never loosens) and respects the floor.
    pub fn step(&mut self, store: &FeatureStore, observed: f64) -> f64 {
        let current = store.load(&self.key).unwrap_or(self.relaxed);
        let target = (observed * self.headroom).max(self.floor);
        let next = if target < current {
            (current + (target - current) * self.rate).max(self.floor)
        } else {
            current
        };
        store.save(&self.key, next);
        next
    }

    /// The threshold key.
    pub fn key(&self) -> &str {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_str;

    #[test]
    fn all_templates_compile_and_verify() {
        let tick = Nanos::from_secs(1);
        let specs = [
            p1_in_distribution("p1-drift", "io_model", 0.25, tick),
            p2_robustness("p2-robust", "cc_model", 10.0, tick),
            p3_output_bounds("p3-bounds", "alloc_decide", "alloc_policy", 0.0, 4096.0),
            p4_decision_quality(
                "p4-quality",
                "io_model",
                "io_policy",
                0.9,
                Nanos::from_secs(10),
                tick,
            ),
            p5_decision_overhead(
                "p5-overhead",
                "io_model",
                "io_policy",
                Nanos::from_secs(10),
                tick,
            ),
            p6_starvation_freedom("p6-liveness", "sched", Nanos::from_millis(100), tick),
        ];
        for spec in &specs {
            let compiled = compile_str(spec).unwrap_or_else(|e| panic!("{e}\n{spec}"));
            assert_eq!(compiled.len(), 1);
            assert!(!compiled[0].rules.is_empty());
            assert!(!compiled[0].actions.is_empty());
        }
    }

    #[test]
    fn p3_uses_function_trigger() {
        let compiled = compile_str(&p3_output_bounds("g", "decide", "slot", 0.0, 10.0)).unwrap();
        assert_eq!(compiled[0].hooks, vec!["decide".to_string()]);
        assert!(compiled[0].timers.is_empty());
    }

    #[test]
    fn p4_embeds_window_and_threshold() {
        let spec = p4_decision_quality(
            "g",
            "m",
            "s",
            0.9,
            Nanos::from_secs(10),
            Nanos::from_secs(1),
        );
        assert!(spec.contains("AVG(m.accuracy, 10000000000)"), "{spec}");
        assert!(spec.contains(">= 0.9"), "{spec}");
    }

    #[test]
    fn calibrator_only_tightens_and_respects_floor() {
        let store = FeatureStore::new();
        let mut cal = Calibrator::new("t", 100.0, 1.2, 1.0, 8.0);
        cal.install(&store);
        // One full-rate step to the target.
        assert_eq!(cal.step(&store, 10.0), 12.0);
        // Observed spikes above the current threshold: no loosening.
        assert_eq!(cal.step(&store, 1000.0), 12.0);
        // Floor binds.
        assert_eq!(cal.step(&store, 0.0), 8.0);
        assert_eq!(cal.key(), "t");
    }
}
