//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides the exact subset of `rand` 0.8's API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_range`] over half-open and
//! inclusive integer/float ranges. The generator is SplitMix64 — a
//! well-studied 64-bit mixer with full-period state progression, more than
//! adequate for deterministic workload synthesis (it is the same mixer
//! `rand` itself uses to seed SmallRng from a u64).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generator engines.
pub mod rngs {
    /// A small, fast, deterministic PRNG (SplitMix64).
    ///
    /// Not cryptographically secure — same caveat as `rand`'s `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }
}

use rngs::SmallRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Avoid the all-zero fixed point of a raw counter start by mixing
        // the seed once on construction.
        SmallRng {
            state: state.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (`rand`'s `Standard` distribution, trait-ified).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for u64 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// Panics on an empty range, matching `rand`.
    fn sample_in<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u64, u32, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// The generator interface, mirroring the `rand::Rng` methods in use.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly (`rand`'s `gen`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`rand`'s `gen_range`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniformish() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = r.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&z));
            let w = r.gen_range(-10i32..10);
            assert!((-10..10).contains(&w));
        }
    }

    #[test]
    fn all_range_buckets_hit() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!(c > 500, "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5u64..5);
    }
}
