//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel::unbounded` MPSC subset the workspace uses, backed
//! by `std::sync::mpsc`. The std sender is already clonable and the receiver
//! blocking, which is all the retrain worker needs.

#![warn(missing_docs)]

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when sending on a channel whose receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on a channel whose senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value without blocking, if one is queued.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop((tx, tx2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
