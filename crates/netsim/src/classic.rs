//! Classic congestion controllers: the known-safe fallbacks.

use crate::link::RoundOutcome;
use crate::CongestionControl;

/// Reno-style AIMD: +1 packet per round, halve on loss.
#[derive(Clone, Debug)]
pub struct Aimd {
    window: f64,
}

impl Default for Aimd {
    fn default() -> Self {
        Self::new()
    }
}

impl Aimd {
    /// Creates the controller at a 10-packet initial window.
    pub fn new() -> Self {
        Aimd { window: 10.0 }
    }
}

impl CongestionControl for Aimd {
    fn next_window(&mut self, outcome: &RoundOutcome) -> f64 {
        if outcome.lost {
            self.window = (self.window / 2.0).max(1.0);
        } else {
            self.window += 1.0;
        }
        self.window
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

/// A CUBIC-style controller: cubic window growth anchored at the last
/// loss's window, with a 0.7 multiplicative decrease.
///
/// This is the predictable, convergent baseline that Orca couples its
/// learned controller to, and the fallback the `REPLACE` action installs.
#[derive(Clone, Debug)]
pub struct Cubic {
    window: f64,
    w_max: f64,
    rounds_since_loss: f64,
    c: f64,
    beta: f64,
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl Cubic {
    /// Creates the controller at a 10-packet initial window.
    pub fn new() -> Self {
        Cubic {
            window: 10.0,
            w_max: 10.0,
            rounds_since_loss: 0.0,
            c: 0.4,
            beta: 0.7,
        }
    }

    /// The inflection delay `K = cbrt(w_max * (1 - beta) / C)`.
    fn k(&self) -> f64 {
        (self.w_max * (1.0 - self.beta) / self.c).cbrt()
    }
}

impl CongestionControl for Cubic {
    fn next_window(&mut self, outcome: &RoundOutcome) -> f64 {
        if outcome.lost {
            self.w_max = self.window;
            self.window = (self.window * self.beta).max(1.0);
            self.rounds_since_loss = 0.0;
        } else {
            self.rounds_since_loss += 1.0;
            let t = self.rounds_since_loss;
            let target = self.c * (t - self.k()).powi(3) + self.w_max;
            self.window = target.max(self.window + 0.1).max(1.0);
        }
        self.window
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkConfig};

    fn drive(mut cc: impl CongestionControl, rounds: usize) -> (f64, Link) {
        let mut link = Link::new(LinkConfig::default(), 9);
        let mut outcome = RoundOutcome::initial(&LinkConfig::default());
        for _ in 0..rounds {
            let w = cc.next_window(&outcome);
            outcome = link.round(w);
        }
        (outcome.window, link)
    }

    #[test]
    fn aimd_reaches_high_utilization() {
        let (_, link) = drive(Aimd::new(), 500);
        assert!(
            link.mean_utilization() > 0.85,
            "{}",
            link.mean_utilization()
        );
    }

    #[test]
    fn cubic_reaches_high_utilization() {
        let (_, link) = drive(Cubic::new(), 500);
        assert!(link.mean_utilization() > 0.9, "{}", link.mean_utilization());
    }

    #[test]
    fn aimd_halves_on_loss() {
        let mut cc = Aimd::new();
        let mut outcome = RoundOutcome::initial(&LinkConfig::default());
        outcome.lost = true;
        cc.window = 64.0;
        assert_eq!(cc.next_window(&outcome), 32.0);
        assert_eq!(cc.name(), "aimd");
    }

    #[test]
    fn cubic_decreases_by_beta_and_regrows() {
        let mut cc = Cubic::new();
        cc.window = 100.0;
        let mut outcome = RoundOutcome::initial(&LinkConfig::default());
        outcome.lost = true;
        let after_loss = cc.next_window(&outcome);
        assert!((after_loss - 70.0).abs() < 1e-9);
        outcome.lost = false;
        let mut w = after_loss;
        for _ in 0..50 {
            w = cc.next_window(&outcome);
        }
        assert!(w > 95.0, "regrows toward w_max: {w}");
        assert_eq!(cc.name(), "cubic");
    }

    #[test]
    fn windows_never_drop_below_one() {
        let mut cc = Aimd::new();
        let mut outcome = RoundOutcome::initial(&LinkConfig::default());
        outcome.lost = true;
        for _ in 0..20 {
            assert!(cc.next_window(&outcome) >= 1.0);
        }
    }
}
