//! Congestion-control substrate: the P2 (robustness) setting.
//!
//! §2 of the paper warns that "a learned congestion control may lead to a
//! sudden drop in bandwidth utilization and fail to recover from it", and
//! Figure 1 assigns congestion control the robustness property P2: "check
//! if the model is sensitive to noisy measurements". This crate builds that
//! scenario:
//!
//! - [`link`]: a fluid bottleneck-link model advanced one RTT round at a
//!   time, with queue-induced RTT inflation and overflow loss;
//! - [`classic`]: AIMD (Reno-style) and a CUBIC-style baseline — the
//!   known-safe fallbacks;
//! - [`learned`]: a bandit congestion controller over discretized
//!   (RTT-gradient, loss) state (Orca-style slow-timescale adjustment).
//!   Trained under clean measurements it behaves; under *noisy RTT
//!   measurements* its state estimate flips randomly and its multiplicative
//!   actions random-walk the window into collapse — organically, with no
//!   scripted failure;
//! - [`sim`]: the scenario wiring the P2 sensitivity-probe guardrail and a
//!   utilization floor to the monitor engine, with `REPLACE` falling back
//!   to CUBIC.

#![warn(missing_docs)]

pub mod classic;
pub mod learned;
pub mod link;
pub mod multiflow;
pub mod sim;

pub use classic::{Aimd, Cubic};
pub use learned::LearnedCc;
pub use link::{Link, LinkConfig, RoundOutcome};
pub use multiflow::{run_fairness_sim, FairnessReport, FairnessSimConfig, SharedLink};
pub use sim::{run_cc_sim, CcPolicyKind, CcReport, CcSimConfig};

/// A congestion controller: maps the last round's outcome to a new window.
pub trait CongestionControl {
    /// Returns the congestion window (in packets) for the next round.
    fn next_window(&mut self, outcome: &RoundOutcome) -> f64;
    /// The policy name.
    fn name(&self) -> &'static str;
}
