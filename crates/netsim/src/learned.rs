//! The learned congestion controller.
//!
//! An Orca-flavoured design reduced to its decision core: discretize the
//! (utilization, RTT-gradient, loss) observation into a state and learn
//! per-state window multipliers with tabular Q-learning on a power-style
//! reward (full pipe, empty queue). Trained under clean measurements it
//! converges to sensible behaviour — grow when the pipe is idle, back off
//! when the queue builds or packets drop.
//!
//! Its hazard is exactly P2: the state estimate is a *threshold function of
//! a noisy measurement*. RTT measurement noise scatters the policy across
//! states — including states never visited during training, whose greedy
//! action is arbitrary — and because the actions are multiplicative, the
//! resulting decision flapping is a downward random walk that collapses the
//! window and never recovers (§2's failure mode).

use mlkit::QTable;

use crate::link::RoundOutcome;
use crate::CongestionControl;

/// The window multipliers the agent chooses among. Action 0 is the
/// strongest back-off; untrained states therefore fail *shrinking* — the
/// conservative direction for a congestion controller, but one that noise
/// can weaponize into collapse.
pub const ACTIONS: [f64; 5] = [0.6, 0.85, 1.0, 1.05, 1.2];

/// States: window bucket (5, log-ish thresholds) × RTT gradient
/// {falling, flat, rising} × loss {no, yes}.
const STATES: usize = 30;

/// Window-bucket thresholds in packets.
const WINDOW_BUCKETS: [f64; 4] = [30.0, 80.0, 140.0, 200.0];

/// The learned controller.
#[derive(Clone, Debug)]
pub struct LearnedCc {
    q: QTable,
    window: f64,
    last_state: usize,
    last_action: usize,
    decisions: u64,
    frozen: bool,
}

impl LearnedCc {
    /// Creates an untrained controller with exploration rate `epsilon`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        LearnedCc {
            q: QTable::new(STATES, ACTIONS.len(), 0.2, 0.9, epsilon, seed),
            window: 10.0,
            last_state: 2, // Smallest window bucket, flat gradient, no loss.
            last_action: 2,
            decisions: 0,
            frozen: false,
        }
    }

    /// Discretizes an observation into a state index.
    ///
    /// The window bucket is the controller's own (noise-free) state; the
    /// RTT-gradient bucket is a threshold function of a *noisy measurement*
    /// — the crack P2 noise gets in through.
    pub fn state_of(outcome: &RoundOutcome) -> usize {
        let window_bucket = WINDOW_BUCKETS
            .iter()
            .filter(|&&t| outcome.window >= t)
            .count();
        let gradient_bucket = if outcome.rtt_gradient < -0.05 {
            0
        } else if outcome.rtt_gradient <= 0.05 {
            1
        } else {
            2
        };
        window_bucket * 6 + gradient_bucket * 2 + usize::from(outcome.lost)
    }

    /// The reward the controller optimizes: utilization minus standing-queue
    /// and loss penalties (a power-style objective: full pipe, empty queue).
    pub fn reward(outcome: &RoundOutcome) -> f64 {
        let queue_penalty = (outcome.rtt_ratio - 1.0).max(0.0);
        let loss_penalty = if outcome.lost { 0.5 } else { 0.0 };
        outcome.utilization - queue_penalty - loss_penalty
    }

    /// Freezes learning and exploration (the deployed, greedy policy).
    pub fn freeze(&mut self) {
        self.frozen = true;
        self.q.set_epsilon(0.0);
    }

    /// Whether the controller is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The greedy multiplier the policy would apply in `state` (for
    /// robustness probing — a pure read).
    pub fn greedy_multiplier(&self, state: usize) -> f64 {
        ACTIONS[self.q.best(state.min(STATES - 1))]
    }

    /// How many training updates `state` received (diagnosing OOD states).
    pub fn state_visits(&self, state: usize) -> u64 {
        self.q.state_visits(state.min(STATES - 1))
    }

    /// The learned Q-value for `(state, action)` (diagnostics).
    pub fn q_value(&self, state: usize, action: usize) -> f64 {
        self.q
            .value(state.min(STATES - 1), action.min(ACTIONS.len() - 1))
    }

    /// Resets the congestion window to the initial value (used between
    /// training episodes so exploration covers the whole operating range
    /// instead of idling in an absorbing region).
    pub fn reset_window(&mut self) {
        self.window = 10.0;
    }

    /// Total decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The multiplier chosen for the most recent round.
    pub fn last_multiplier(&self) -> f64 {
        ACTIONS[self.last_action]
    }
}

impl CongestionControl for LearnedCc {
    fn next_window(&mut self, outcome: &RoundOutcome) -> f64 {
        let state = Self::state_of(outcome);
        // Learn from the consequence of the previous action.
        if !self.frozen {
            self.q.update(
                self.last_state,
                self.last_action,
                Self::reward(outcome),
                state,
            );
        }
        let action = self.q.select(state);
        self.last_state = state;
        self.last_action = action;
        self.decisions += 1;
        self.window = (self.window * ACTIONS[action]).clamp(1.0, 1_000.0);
        self.window
    }

    fn name(&self) -> &'static str {
        "learned-cc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkConfig};

    fn train(rounds: usize, seed: u64) -> (LearnedCc, Link) {
        let config = LinkConfig::default();
        let mut link = Link::new(config, seed);
        let mut cc = LearnedCc::new(0.2, seed);
        let mut outcome = RoundOutcome::initial(&config);
        for round in 0..rounds {
            if round % 200 == 0 {
                cc.reset_window();
            }
            let w = cc.next_window(&outcome);
            outcome = link.round(w);
        }
        cc.freeze();
        (cc, link)
    }

    #[test]
    fn state_discretization() {
        let mut o = RoundOutcome::initial(&LinkConfig::default());
        o.window = 10.0;
        o.rtt_gradient = -0.2;
        assert_eq!(LearnedCc::state_of(&o), 0);
        o.rtt_gradient = 0.0;
        assert_eq!(LearnedCc::state_of(&o), 2);
        o.rtt_gradient = 0.2;
        assert_eq!(LearnedCc::state_of(&o), 4);
        o.window = 100.0; // Third bucket.
        assert_eq!(LearnedCc::state_of(&o), 16);
        o.lost = true;
        assert_eq!(LearnedCc::state_of(&o), 17);
        o.window = 500.0; // Top bucket.
        assert_eq!(LearnedCc::state_of(&o), 29);
    }

    #[test]
    fn trained_policy_utilizes_the_link() {
        // 6k rounds (matching the test below) so convergence does not hinge
        // on one lucky exploration stream.
        let (cc, _) = train(6_000, 3);
        let config = LinkConfig::default();
        let mut link = Link::new(config, 99);
        let mut eval = cc.clone();
        eval.reset_window();
        let mut outcome = RoundOutcome::initial(&config);
        for _ in 0..400 {
            let w = eval.next_window(&outcome);
            outcome = link.round(w);
        }
        assert!(
            link.mean_utilization() > 0.8,
            "trained utilization {}",
            link.mean_utilization()
        );
    }

    #[test]
    fn trained_policy_grows_when_small_backs_off_on_loss() {
        let (cc, _) = train(6_000, 7);
        // Smallest window bucket, flat gradient, no loss: grow.
        assert!(
            cc.greedy_multiplier(2) > 1.0,
            "small: {}",
            cc.greedy_multiplier(2)
        );
        // Top window bucket with loss (flat gradient): back off.
        assert!(
            cc.greedy_multiplier(27) < 1.0,
            "loss: {} (visits {})",
            cc.greedy_multiplier(27),
            cc.state_visits(27)
        );
    }

    #[test]
    fn frozen_policy_stops_learning() {
        let (mut cc, _) = train(500, 11);
        assert!(cc.is_frozen());
        let before: Vec<f64> = (0..STATES).map(|s| cc.greedy_multiplier(s)).collect();
        let mut o = RoundOutcome::initial(&LinkConfig::default());
        o.utilization = 0.0;
        for _ in 0..100 {
            cc.next_window(&o);
        }
        let after: Vec<f64> = (0..STATES).map(|s| cc.greedy_multiplier(s)).collect();
        assert_eq!(before, after);
        assert!(cc.decisions() >= 600);
    }

    #[test]
    fn reward_prefers_full_clean_pipe() {
        let mut good = RoundOutcome::initial(&LinkConfig::default());
        good.utilization = 1.0;
        let mut bad = good;
        bad.lost = true;
        bad.rtt_ratio = 1.5;
        assert!(LearnedCc::reward(&good) > LearnedCc::reward(&bad));
    }

    #[test]
    fn window_stays_in_bounds() {
        let mut cc = LearnedCc::new(1.0, 5);
        let mut o = RoundOutcome::initial(&LinkConfig::default());
        o.lost = true;
        for _ in 0..200 {
            let w = cc.next_window(&o);
            assert!((1.0..=1_000.0).contains(&w));
        }
        assert_eq!(cc.name(), "learned-cc");
        assert!(ACTIONS.contains(&cc.last_multiplier()));
    }

    #[test]
    fn untrained_states_exist_after_clean_training() {
        let (cc, _) = train(4_000, 13);
        // Rising-RTT at a small window cannot occur without noise (an empty
        // queue cannot inflate RTT), so that state is barely visited — the
        // OOD hole the P2 scenario falls into.
        assert!(
            cc.state_visits(4) < 20,
            "small-window rising-RTT: {}",
            cc.state_visits(4)
        );
    }
}
