//! A fluid bottleneck-link model advanced one RTT round at a time.

use simkernel::{DetRng, Nanos};

/// Link parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Bandwidth-delay product in packets (the window that exactly fills
    /// the pipe at base RTT).
    pub bdp_packets: f64,
    /// Queue capacity in packets beyond the BDP.
    pub queue_packets: f64,
    /// Base (uncongested) round-trip time.
    pub base_rtt: Nanos,
    /// Standard deviation of *measurement* noise on reported RTTs, as a
    /// fraction of base RTT (the P2 stressor; the real queue is unaffected).
    pub rtt_noise: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            bdp_packets: 100.0,
            queue_packets: 50.0,
            base_rtt: Nanos::from_millis(20),
            rtt_noise: 0.0,
        }
    }
}

/// What a controller observes after one round.
#[derive(Clone, Copy, Debug)]
pub struct RoundOutcome {
    /// Packets acknowledged this round.
    pub acked: f64,
    /// Whether loss occurred (queue overflow).
    pub lost: bool,
    /// The *measured* RTT (true RTT plus measurement noise).
    pub rtt: Nanos,
    /// Measured RTT gradient vs. the previous round, in fractions of base.
    pub rtt_gradient: f64,
    /// Measured RTT as a multiple of the base RTT (1.0 = uncongested).
    pub rtt_ratio: f64,
    /// Link utilization achieved this round in `[0, 1]`.
    pub utilization: f64,
    /// The window that was in flight.
    pub window: f64,
}

impl RoundOutcome {
    /// The initial outcome fed to a controller before any traffic.
    pub fn initial(config: &LinkConfig) -> Self {
        RoundOutcome {
            acked: 0.0,
            lost: false,
            rtt: config.base_rtt,
            rtt_gradient: 0.0,
            rtt_ratio: 1.0,
            utilization: 0.0,
            window: 1.0,
        }
    }
}

/// The bottleneck link.
///
/// # Examples
///
/// ```
/// use netsim::{Link, LinkConfig};
///
/// let mut link = Link::new(LinkConfig::default(), 7);
/// let out = link.round(100.0); // Exactly the BDP.
/// assert!(!out.lost);
/// assert!(out.utilization > 0.99);
/// ```
#[derive(Clone, Debug)]
pub struct Link {
    config: LinkConfig,
    rng: DetRng,
    last_measured_rtt: Nanos,
    rounds: u64,
    total_utilization: f64,
}

impl Link {
    /// Creates a link.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            rng: DetRng::seed(seed),
            last_measured_rtt: config.base_rtt,
            rounds: 0,
            total_utilization: 0.0,
        }
    }

    /// Turns measurement noise on/off mid-run (the phase shift).
    pub fn set_rtt_noise(&mut self, noise: f64) {
        self.config.rtt_noise = noise.max(0.0);
    }

    /// Advances one RTT round with `window` packets in flight.
    pub fn round(&mut self, window: f64) -> RoundOutcome {
        let window = window.max(1.0);
        let capacity = self.config.bdp_packets;
        let queue_limit = capacity + self.config.queue_packets;
        let (acked, lost, queue) = if window <= capacity {
            (window, false, 0.0)
        } else if window <= queue_limit {
            (capacity, false, window - capacity)
        } else {
            // Overflow: the excess is dropped.
            (capacity, true, self.config.queue_packets)
        };
        // True RTT inflates with queue occupancy.
        let true_rtt =
            Nanos::from_secs_f64(self.config.base_rtt.as_secs_f64() * (1.0 + queue / capacity));
        // Measured RTT adds noise (sensors, jittery timestamps, ...).
        let noise = 1.0 + self.rng.normal(0.0, self.config.rtt_noise).clamp(-0.9, 3.0);
        let measured = Nanos::from_secs_f64(true_rtt.as_secs_f64() * noise);
        let gradient = (measured.as_secs_f64() - self.last_measured_rtt.as_secs_f64())
            / self.config.base_rtt.as_secs_f64();
        self.last_measured_rtt = measured;
        let utilization = (acked / capacity).min(1.0);
        self.rounds += 1;
        self.total_utilization += utilization;
        RoundOutcome {
            acked,
            lost,
            rtt: measured,
            rtt_gradient: gradient,
            rtt_ratio: measured.as_secs_f64() / self.config.base_rtt.as_secs_f64(),
            utilization,
            window,
        }
    }

    /// Mean utilization over all rounds so far.
    pub fn mean_utilization(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_utilization / self.rounds as f64
        }
    }

    /// Rounds simulated.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(LinkConfig::default(), 1)
    }

    #[test]
    fn underfilled_pipe_underutilizes() {
        let mut l = link();
        let out = l.round(50.0);
        assert!(!out.lost);
        assert!((out.utilization - 0.5).abs() < 1e-9);
        assert_eq!(out.rtt, Nanos::from_millis(20), "no queue, no noise");
    }

    #[test]
    fn queueing_inflates_rtt_without_loss() {
        let mut l = link();
        let out = l.round(125.0);
        assert!(!out.lost);
        assert!(out.utilization > 0.99);
        assert!(out.rtt > Nanos::from_millis(20));
        assert!(out.rtt_gradient > 0.0);
    }

    #[test]
    fn overflow_loses() {
        let mut l = link();
        let out = l.round(200.0);
        assert!(out.lost);
        assert!(out.utilization > 0.99, "the link itself stays busy");
    }

    #[test]
    fn measurement_noise_only_affects_reported_rtt() {
        let mut clean = Link::new(LinkConfig::default(), 3);
        let mut noisy = Link::new(
            LinkConfig {
                rtt_noise: 0.3,
                ..LinkConfig::default()
            },
            3,
        );
        let a = clean.round(50.0);
        let b = noisy.round(50.0);
        assert_eq!(a.acked, b.acked, "throughput identical");
        assert_eq!(a.utilization, b.utilization);
        assert_ne!(a.rtt, b.rtt, "reported RTT differs");
    }

    #[test]
    fn mean_utilization_accumulates() {
        let mut l = link();
        l.round(100.0);
        l.round(50.0);
        assert!((l.mean_utilization() - 0.75).abs() < 1e-9);
        assert_eq!(l.rounds(), 2);
    }

    #[test]
    fn window_floor_is_one_packet() {
        let mut l = link();
        let out = l.round(0.0);
        assert!(out.acked >= 1.0);
    }
}
