//! The congestion-control scenario: collapse under noisy measurements, and
//! the P2 guardrail that falls back to CUBIC.

use std::collections::VecDeque;
use std::sync::Arc;

use guardrails::monitor::MonitorEngine;
use guardrails::policy::{PolicyRegistry, VARIANT_FALLBACK, VARIANT_LEARNED};
use guardrails::{Telemetry, TelemetrySnapshot};

use crate::classic::Cubic;
use crate::learned::LearnedCc;
use crate::link::{Link, LinkConfig, RoundOutcome};
use crate::CongestionControl;

/// The P2 guardrail: decisions must be stable within a time window.
///
/// `cc.flip_rate` is the fraction of adjacent decision pairs in the recent
/// window that flipped between grow and shrink — the operational form of
/// "similar inputs yield similar outputs and behavior within a time window"
/// (Figure 1, P2). A backup utilization floor catches a collapse that the
/// flip detector somehow misses (defense in depth; also a P4-style check).
pub const P2_GUARDRAIL: &str = r#"
guardrail cc-robustness {
    trigger: { TIMER(0, 200ms) },
    rule: {
        LOAD(cc.flip_rate) <= 0.3
        AVG(net.utilization, 1s) >= 0.4
    },
    action: {
        REPORT("learned CC unstable", cc.flip_rate, net.utilization_now)
        REPLACE(cc_policy, fallback)
    }
}
"#;

/// Which controller starts active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcPolicyKind {
    /// CUBIC only.
    Cubic,
    /// The learned controller (CUBIC registered as fallback).
    Learned,
}

/// Configuration of the scenario.
#[derive(Clone, Debug)]
pub struct CcSimConfig {
    /// RNG seed.
    pub seed: u64,
    /// Link parameters.
    pub link: LinkConfig,
    /// Training rounds (clean measurements, exploration on).
    pub train_rounds: u32,
    /// Clean evaluation rounds after training.
    pub clean_rounds: u32,
    /// Noisy-measurement rounds after the shift.
    pub noisy_rounds: u32,
    /// RTT measurement noise applied at the shift.
    pub noise: f64,
    /// The starting policy.
    pub policy: CcPolicyKind,
    /// Install the P2 guardrail?
    pub with_guardrail: bool,
}

impl Default for CcSimConfig {
    fn default() -> Self {
        CcSimConfig {
            seed: 0xCC_11,
            link: LinkConfig::default(),
            train_rounds: 6_000,
            clean_rounds: 500,
            noisy_rounds: 1_500,
            noise: 0.35,
            policy: CcPolicyKind::Learned,
            with_guardrail: false,
        }
    }
}

/// The output of one run.
#[derive(Clone, Debug)]
pub struct CcReport {
    /// Mean utilization over the clean evaluation phase.
    pub clean_utilization: f64,
    /// Mean utilization over the noisy phase.
    pub noisy_utilization: f64,
    /// Mean utilization over the last quarter of the noisy phase.
    pub noisy_tail_utilization: f64,
    /// Violations recorded.
    pub violations: usize,
    /// Whether the learned controller was still active at the end.
    pub learned_active_at_end: bool,
    /// `(seconds, utilization)` series for plotting.
    pub series: Vec<(f64, f64)>,
    /// Deterministic engine telemetry counters for the run.
    pub telemetry: TelemetrySnapshot,
}

/// Runs the scenario.
///
/// # Panics
///
/// Panics if the built-in guardrail spec fails to compile (a crate bug).
pub fn run_cc_sim(config: CcSimConfig) -> CcReport {
    let registry = Arc::new(PolicyRegistry::new());
    registry
        .register("cc_policy", &[VARIANT_LEARNED, VARIANT_FALLBACK])
        .expect("fresh registry");
    if config.policy == CcPolicyKind::Cubic {
        registry
            .replace("cc_policy", VARIANT_FALLBACK)
            .expect("variant exists");
    }
    let mut engine = MonitorEngine::with_parts(
        Arc::new(guardrails::FeatureStore::new()),
        Arc::clone(&registry),
    );
    let telemetry = Telemetry::new();
    engine.set_telemetry(Arc::clone(&telemetry));
    let store = engine.store();

    let mut link = Link::new(config.link, config.seed);
    let mut learned = LearnedCc::new(0.2, config.seed ^ 0xBEEF);
    let mut cubic = Cubic::new();
    let mut outcome = RoundOutcome::initial(&config.link);
    let rtt = config.link.base_rtt;
    let total = config.train_rounds + config.clean_rounds + config.noisy_rounds;
    let shift_at = config.train_rounds + config.clean_rounds;

    let mut recent_mults: VecDeque<f64> = VecDeque::new();
    let mut clean_util = 0.0;
    let mut noisy_util = 0.0;
    let mut tail_util = 0.0;
    let mut tail_rounds = 0u32;
    let mut series = Vec::new();
    let mut util_window = 0.0;
    let mut util_rounds = 0u32;

    for round in 0..total {
        let now = rtt * u64::from(round + 1);
        if round < config.train_rounds && round % 200 == 0 {
            // Episodic training resets (exploration over the whole range).
            learned.reset_window();
        }
        if round == config.train_rounds {
            learned.freeze();
            learned.reset_window();
            // The guardrail deploys alongside the trained model — it
            // monitors the deployed policy, not the offline trainer.
            if config.with_guardrail {
                engine.install_str(P2_GUARDRAIL).expect("P2 spec compiles");
            }
        }
        if round == shift_at {
            link.set_rtt_noise(config.noise);
        }

        let use_learned = registry.is_active("cc_policy", VARIANT_LEARNED);
        let window = if use_learned {
            let w = learned.next_window(&outcome);
            recent_mults.push_back(learned.last_multiplier());
            if recent_mults.len() > 32 {
                recent_mults.pop_front();
            }
            w
        } else {
            cubic.next_window(&outcome)
        };
        outcome = link.round(window);

        // Publish P2 features: the grow/shrink flip rate of the learned
        // policy's recent decisions, plus the utilization series.
        let flips = recent_mults
            .iter()
            .zip(recent_mults.iter().skip(1))
            .filter(|(a, b)| (**a > 1.0) != (**b > 1.0) && (**a - 1.0) * (**b - 1.0) != 0.0)
            .count();
        let flip_rate = if recent_mults.len() > 1 && use_learned {
            flips as f64 / (recent_mults.len() - 1) as f64
        } else {
            0.0
        };
        store.save("cc.flip_rate", flip_rate);
        store.record("net.utilization", now, outcome.utilization);
        store.save("net.utilization_now", outcome.utilization);
        engine.advance_to(now);

        // Phase accounting.
        if round >= config.train_rounds && round < shift_at {
            clean_util += outcome.utilization;
        } else if round >= shift_at {
            noisy_util += outcome.utilization;
            if round >= total - config.noisy_rounds / 4 {
                tail_util += outcome.utilization;
                tail_rounds += 1;
            }
        }
        util_window += outcome.utilization;
        util_rounds += 1;
        if util_rounds == 25 {
            series.push((now.as_secs_f64(), util_window / util_rounds as f64));
            util_window = 0.0;
            util_rounds = 0;
        }
    }

    CcReport {
        clean_utilization: clean_util / config.clean_rounds.max(1) as f64,
        noisy_utilization: noisy_util / config.noisy_rounds.max(1) as f64,
        noisy_tail_utilization: tail_util / tail_rounds.max(1) as f64,
        violations: engine.violations().len(),
        learned_active_at_end: registry.is_active("cc_policy", VARIANT_LEARNED),
        series,
        telemetry: telemetry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: CcPolicyKind, with_guardrail: bool) -> CcReport {
        run_cc_sim(CcSimConfig {
            policy,
            with_guardrail,
            ..CcSimConfig::default()
        })
    }

    #[test]
    fn learned_cc_performs_when_clean() {
        let report = run(CcPolicyKind::Learned, false);
        assert!(
            report.clean_utilization > 0.7,
            "clean utilization {}",
            report.clean_utilization
        );
    }

    #[test]
    fn learned_cc_collapses_under_measurement_noise() {
        let report = run(CcPolicyKind::Learned, false);
        assert!(
            report.noisy_tail_utilization < 0.4,
            "expected collapse, got {}",
            report.noisy_tail_utilization
        );
        assert!(report.learned_active_at_end);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn cubic_is_robust_to_measurement_noise() {
        let report = run(CcPolicyKind::Cubic, false);
        assert!(
            report.noisy_utilization > 0.8,
            "cubic noisy utilization {}",
            report.noisy_utilization
        );
    }

    #[test]
    fn p2_guardrail_restores_utilization() {
        let guarded = run(CcPolicyKind::Learned, true);
        let unguarded = run(CcPolicyKind::Learned, false);
        assert!(guarded.violations > 0, "guardrail must fire");
        assert!(!guarded.learned_active_at_end, "fallback installed");
        assert!(
            guarded.noisy_tail_utilization > unguarded.noisy_tail_utilization + 0.3,
            "guarded tail {} vs unguarded tail {}",
            guarded.noisy_tail_utilization,
            unguarded.noisy_tail_utilization
        );
        // Identical before the shift.
        assert!((guarded.clean_utilization - unguarded.clean_utilization).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(CcPolicyKind::Learned, true);
        let b = run(CcPolicyKind::Learned, true);
        assert_eq!(a.noisy_tail_utilization, b.noisy_tail_utilization);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.telemetry, b.telemetry, "telemetry counters determinize");
    }
}
