//! Multi-flow sharing and the fairness guardrail.
//!
//! The paper's §1 cites "starvation in end-to-end congestion control"
//! (Arun et al., SIGCOMM '22) among the heuristic failures motivating
//! guardrails, and P6 covers fairness as a first-class property. This
//! module puts a (solo-trained) learned controller on a link *shared* with
//! an AIMD flow. Competition is out of distribution for it: solo training
//! only ever saw losses at a full-capacity window, so the loss states at
//! the mid-size windows competition forces it into were never visited — and
//! an unvisited state's action is arbitrary (here: the strongest back-off).
//! Every synchronized loss knocks the learned flow down harder than the
//! AIMD competitor, and it converges to a starved sliver of the link —
//! organically reproducing the end-to-end starvation result the paper cites
//! (Arun et al., SIGCOMM '22). A Jain-index guardrail detects the unfair
//! split and replaces the learned controller with AIMD, whose
//! multiplicative-decrease symmetry against the competing AIMD flow is the
//! textbook fairness-convergence result.

use std::sync::Arc;

use guardrails::monitor::MonitorEngine;
use guardrails::policy::{PolicyRegistry, VARIANT_FALLBACK, VARIANT_LEARNED};
use simkernel::{JainIndex, Nanos};

use crate::classic::Aimd;
use crate::learned::LearnedCc;
use crate::link::{Link, LinkConfig, RoundOutcome};
use crate::CongestionControl;

/// The P6 fairness guardrail for the shared link: the windowed Jain index
/// of the two flows' throughput shares must stay above 0.8.
pub const FAIRNESS_GUARDRAIL: &str = r#"
guardrail flow-fairness {
    trigger: { TIMER(2s, 500ms) },
    rule: { AVG(net.jain, 2s) >= 0.8 },
    action: {
        REPORT("unfair bandwidth split", net.jain_now)
        REPLACE(cc_policy, fallback)
    }
}
"#;

/// A bottleneck link shared by two flows (FIFO, proportional sharing).
pub struct SharedLink {
    config: LinkConfig,
    last_rtt_ratio: [f64; 2],
}

impl SharedLink {
    /// Creates the link.
    pub fn new(config: LinkConfig) -> Self {
        SharedLink {
            config,
            last_rtt_ratio: [1.0, 1.0],
        }
    }

    /// Advances one RTT round with both flows' windows in flight; returns
    /// each flow's outcome. Utilization here is the flow's share of link
    /// capacity; loss is synchronized on overflow (drop-tail FIFO).
    pub fn round(&mut self, windows: [f64; 2]) -> [RoundOutcome; 2] {
        let capacity = self.config.bdp_packets;
        let queue_limit = capacity + self.config.queue_packets;
        let total: f64 = windows.iter().map(|w| w.max(1.0)).sum();
        let lost = total > queue_limit;
        let queue = (total - capacity).clamp(0.0, self.config.queue_packets);
        let rtt_ratio = 1.0 + queue / capacity;
        let rtt = Nanos::from_secs_f64(self.config.base_rtt.as_secs_f64() * rtt_ratio);
        let mut out = [
            RoundOutcome::initial(&self.config),
            RoundOutcome::initial(&self.config),
        ];
        for (i, o) in out.iter_mut().enumerate() {
            let w = windows[i].max(1.0);
            let acked = if total <= capacity {
                w
            } else {
                capacity * w / total
            };
            let gradient = (rtt_ratio - self.last_rtt_ratio[i])
                * self.config.base_rtt.as_secs_f64()
                / self.config.base_rtt.as_secs_f64();
            self.last_rtt_ratio[i] = rtt_ratio;
            *o = RoundOutcome {
                acked,
                lost,
                rtt,
                rtt_gradient: gradient,
                rtt_ratio,
                utilization: (acked / capacity).min(1.0),
                window: w,
            };
        }
        out
    }
}

/// Configuration of the fairness scenario.
#[derive(Clone, Debug)]
pub struct FairnessSimConfig {
    /// RNG/model seed.
    pub seed: u64,
    /// Solo training rounds for the learned controller.
    pub train_rounds: u32,
    /// Shared-link competition rounds.
    pub compete_rounds: u32,
    /// Install the fairness guardrail?
    pub with_guardrail: bool,
    /// Use the AIMD fallback for flow 0 from the start (fairness baseline).
    pub fallback_vs_aimd: bool,
}

impl Default for FairnessSimConfig {
    fn default() -> Self {
        FairnessSimConfig {
            seed: 0xFA1E,
            train_rounds: 6_000,
            compete_rounds: 2_000,
            with_guardrail: false,
            fallback_vs_aimd: false,
        }
    }
}

/// The output of one fairness run.
#[derive(Clone, Debug)]
pub struct FairnessReport {
    /// Mean Jain index over the last half of the competition.
    pub tail_jain: f64,
    /// Flow throughput shares over the last half (learned/fallback, aimd).
    pub tail_shares: [f64; 2],
    /// Violations recorded.
    pub violations: usize,
    /// Whether the learned controller was still active at the end.
    pub learned_active_at_end: bool,
}

/// Runs the fairness scenario.
///
/// # Panics
///
/// Panics if the built-in guardrail spec fails to compile (a crate bug).
pub fn run_fairness_sim(config: FairnessSimConfig) -> FairnessReport {
    let link_config = LinkConfig::default();

    // Train the learned controller alone on a private link — it has never
    // seen a competitor.
    let mut learned = LearnedCc::new(0.2, config.seed);
    {
        let mut solo = Link::new(link_config, config.seed);
        let mut outcome = RoundOutcome::initial(&link_config);
        for round in 0..config.train_rounds {
            if round % 200 == 0 {
                learned.reset_window();
            }
            let w = learned.next_window(&outcome);
            outcome = solo.round(w);
        }
        learned.freeze();
        learned.reset_window();
    }

    let registry = Arc::new(PolicyRegistry::new());
    registry
        .register("cc_policy", &[VARIANT_LEARNED, VARIANT_FALLBACK])
        .expect("fresh registry");
    if config.fallback_vs_aimd {
        registry
            .replace("cc_policy", VARIANT_FALLBACK)
            .expect("variant exists");
    }
    let mut engine = MonitorEngine::with_parts(
        Arc::new(guardrails::FeatureStore::new()),
        Arc::clone(&registry),
    );
    if config.with_guardrail {
        engine
            .install_str(FAIRNESS_GUARDRAIL)
            .expect("guardrail compiles");
    }
    let store = engine.store();

    let mut shared = SharedLink::new(link_config);
    let mut fallback = Aimd::new();
    let mut aimd = Aimd::new();
    let mut outcomes = [
        RoundOutcome::initial(&link_config),
        RoundOutcome::initial(&link_config),
    ];
    let mut tail_jain = 0.0;
    let mut tail_acked = [0.0f64; 2];
    let mut tail_rounds = 0u32;

    for round in 0..config.compete_rounds {
        let now = link_config.base_rtt * u64::from(round + 1);
        let w0 = if registry.is_active("cc_policy", VARIANT_LEARNED) {
            learned.next_window(&outcomes[0])
        } else {
            fallback.next_window(&outcomes[0])
        };
        let w1 = aimd.next_window(&outcomes[1]);
        outcomes = shared.round([w0, w1]);

        let jain = JainIndex::of(&[outcomes[0].acked, outcomes[1].acked]);
        store.record("net.jain", now, jain);
        store.save("net.jain_now", jain);
        engine.advance_to(now);

        if round >= config.compete_rounds / 2 {
            tail_jain += jain;
            tail_acked[0] += outcomes[0].acked;
            tail_acked[1] += outcomes[1].acked;
            tail_rounds += 1;
        }
    }

    let total_acked: f64 = tail_acked.iter().sum();
    FairnessReport {
        tail_jain: tail_jain / f64::from(tail_rounds.max(1)),
        tail_shares: [
            tail_acked[0] / total_acked.max(1e-9),
            tail_acked[1] / total_acked.max(1e-9),
        ],
        violations: engine.violations().len(),
        learned_active_at_end: registry.is_active("cc_policy", VARIANT_LEARNED),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_link_splits_proportionally() {
        let mut link = SharedLink::new(LinkConfig::default());
        let out = link.round([90.0, 30.0]);
        assert!(!out[0].lost, "within queue limit");
        // 100 capacity split 3:1.
        assert!((out[0].acked - 75.0).abs() < 1e-9);
        assert!((out[1].acked - 25.0).abs() < 1e-9);
        assert!(out[0].rtt_ratio > 1.0, "queue inflates RTT");
        // Overflow loses for both (drop-tail).
        let out = link.round([300.0, 50.0]);
        assert!(out[0].lost && out[1].lost);
    }

    #[test]
    fn aimd_vs_aimd_converges_to_fair() {
        let report = run_fairness_sim(FairnessSimConfig {
            fallback_vs_aimd: true,
            ..FairnessSimConfig::default()
        });
        assert!(report.tail_jain > 0.9, "jain {}", report.tail_jain);
    }

    #[test]
    fn solo_trained_learned_cc_starves_under_competition() {
        let report = run_fairness_sim(FairnessSimConfig::default());
        assert!(
            report.tail_jain < 0.8,
            "expected unfairness, jain {}",
            report.tail_jain
        );
        // The learned flow starves *itself*: competition-induced loss states
        // are out of its training distribution (the Arun et al. failure).
        assert!(
            report.tail_shares[0] < 0.3,
            "learned flow starved: {:?}",
            report.tail_shares
        );
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn fairness_guardrail_restores_the_split() {
        let guarded = run_fairness_sim(FairnessSimConfig {
            with_guardrail: true,
            ..FairnessSimConfig::default()
        });
        let unguarded = run_fairness_sim(FairnessSimConfig::default());
        assert!(guarded.violations > 0, "guardrail fires");
        assert!(!guarded.learned_active_at_end);
        assert!(
            guarded.tail_jain > unguarded.tail_jain + 0.1,
            "guarded {} vs unguarded {}",
            guarded.tail_jain,
            unguarded.tail_jain
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_fairness_sim(FairnessSimConfig::default());
        let b = run_fairness_sim(FairnessSimConfig::default());
        assert_eq!(a.tail_jain, b.tail_jain);
    }
}
