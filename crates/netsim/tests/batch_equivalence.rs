//! Property test: batched ingestion of ACK events is *observationally
//! identical* to sequential ingestion — the engine-level property from
//! `crates/core/tests/batch_equivalence.rs`, instantiated with netsim's
//! domain vocabulary (RTT samples, the P2 flip-rate stability signal) and
//! extended to the telemetry layer: the deterministic [`TelemetrySnapshot`]
//! counters must also match bit-for-bit, for any event history and any
//! chunking of it into batches.
//!
//! The only permitted divergence is measured wall time, which the snapshot
//! excludes by design.

use std::sync::Arc;

use guardrails::monitor::engine::{EngineStats, FnEvent, MonitorEngine};
use guardrails::{PolicyRegistry, Telemetry, TelemetrySnapshot};
use proptest::collection::vec;
use proptest::prelude::*;
use simkernel::Nanos;

/// Two monitors on the hot hook — one driven by the RTT argument, one by
/// the flip-rate signal the simulator publishes — plus a bystander on the
/// drop hook so dispatch misses are exercised.
const SPECS: &str = r#"
guardrail rtt-ceiling {
    trigger: { FUNCTION(ack_received) },
    rule: { ARG(0) <= 50000 },
    action: { SAVE(net.last_slow_rtt, ARG(0)) RECORD(net.rtt_spikes, 1) }
}
guardrail cc-stability {
    trigger: { FUNCTION(ack_received) },
    rule: { LOAD(cc.flip_rate) <= 0.3 },
    action: { RECORD(cc.flip_violations, 1) }
}
guardrail bystander {
    trigger: { FUNCTION(pkt_dropped) },
    rule: { ARG(0) < 1 },
    action: { RECORD(net.drop_hits, 1) }
}
"#;

fn fresh_engine() -> (MonitorEngine, Arc<Telemetry>) {
    let registry = Arc::new(PolicyRegistry::new());
    let mut engine = MonitorEngine::with_parts(Arc::new(guardrails::FeatureStore::new()), registry);
    let telemetry = Telemetry::new();
    engine.set_telemetry(Arc::clone(&telemetry));
    engine.install_str(SPECS).unwrap();
    (engine, telemetry)
}

/// One generated ACK: a time step, the measured RTT in microseconds, and
/// the flip rate written to the store just before ingestion (so the P2
/// rule sees evolving state).
#[derive(Clone, Debug)]
struct Ack {
    dt_us: u64,
    rtt_us: f64,
    flip_rate: f64,
}

fn acks() -> impl Strategy<Value = Vec<Ack>> {
    vec(
        (1u64..500, 0.0f64..100_000.0, 0.0f64..1.0).prop_map(|(dt_us, rtt_us, flip_rate)| Ack {
            dt_us,
            rtt_us,
            flip_rate,
        }),
        0..60,
    )
}

/// Everything observable about a run except wall-clock noise, now including
/// the telemetry counters.
#[derive(Debug, PartialEq)]
struct Observable {
    violations: Vec<guardrails::monitor::Violation>,
    scalars: Vec<(String, f64)>,
    total_violations: u64,
    stats: EngineStats,
    telemetry: TelemetrySnapshot,
}

fn observe(engine: &MonitorEngine, telemetry: &Telemetry) -> Observable {
    let mut scalars = engine.store().scalars();
    scalars.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut stats = engine.stats();
    stats.eval_wall_ns = 0; // machine noise, excluded by design
    Observable {
        violations: engine.violations(),
        scalars,
        total_violations: engine.violation_log().total(),
        stats,
        telemetry: telemetry.snapshot(),
    }
}

/// Drives `engine` through `acks` in batches split at `cuts`, store writes
/// applied chunk-first (the ring-buffer-drain convention from the core
/// test).
fn run_batched(engine: &mut MonitorEngine, acks: &[Ack], cuts: &[usize]) {
    let store = engine.store();
    let mut now = Nanos::ZERO;
    let mut begin = 0usize;
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (acks.len() + 1)).collect();
    boundaries.push(acks.len());
    boundaries.sort_unstable();
    for &end in &boundaries {
        if end <= begin {
            continue;
        }
        let chunk = &acks[begin..end];
        let mut times = Vec::with_capacity(chunk.len());
        for ack in chunk {
            now += Nanos::from_micros(ack.dt_us);
            store.save("cc.flip_rate", ack.flip_rate);
            times.push(now);
        }
        let args: Vec<[f64; 1]> = chunk.iter().map(|a| [a.rtt_us]).collect();
        let events: Vec<FnEvent<'_>> = times
            .iter()
            .zip(&args)
            .map(|(&t, a)| FnEvent { now: t, args: a })
            .collect();
        engine.on_function_batch("ack_received", &events);
        begin = end;
    }
}

/// Sequential run with the same chunk-first store-write convention, so both
/// runs observe identical inputs.
fn run_sequential_chunked(engine: &mut MonitorEngine, acks: &[Ack], cuts: &[usize]) {
    let store = engine.store();
    let mut now = Nanos::ZERO;
    let mut begin = 0usize;
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (acks.len() + 1)).collect();
    boundaries.push(acks.len());
    boundaries.sort_unstable();
    for &end in &boundaries {
        if end <= begin {
            continue;
        }
        let chunk = &acks[begin..end];
        let mut times = Vec::with_capacity(chunk.len());
        for ack in chunk {
            now += Nanos::from_micros(ack.dt_us);
            store.save("cc.flip_rate", ack.flip_rate);
            times.push(now);
        }
        for (ack, &t) in chunk.iter().zip(&times) {
            engine.on_function("ack_received", t, &[ack.rtt_us]);
        }
        begin = end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_ingestion_is_observationally_identical_to_sequential(
        acks in acks(),
        cuts in vec(0usize..61, 0..6),
    ) {
        let (mut sequential, seq_telemetry) = fresh_engine();
        let (mut batched, bat_telemetry) = fresh_engine();
        run_sequential_chunked(&mut sequential, &acks, &cuts);
        run_batched(&mut batched, &acks, &cuts);
        prop_assert_eq!(
            observe(&sequential, &seq_telemetry),
            observe(&batched, &bat_telemetry)
        );
        prop_assert_eq!(
            sequential.drain_commands(),
            batched.drain_commands(),
            "deferred commands must match"
        );
    }

    #[test]
    fn single_event_batches_match_plain_on_function(acks in acks()) {
        // Degenerate chunking: every batch holds exactly one event — the
        // contract `on_function` itself relies on.
        let (mut sequential, seq_telemetry) = fresh_engine();
        let (mut batched, bat_telemetry) = fresh_engine();
        let cuts: Vec<usize> = (0..=acks.len()).collect();
        run_sequential_chunked(&mut sequential, &acks, &cuts);
        run_batched(&mut batched, &acks, &cuts);
        prop_assert_eq!(
            observe(&sequential, &seq_telemetry),
            observe(&batched, &bat_telemetry)
        );
    }
}
