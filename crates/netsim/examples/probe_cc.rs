//! Calibration probe for the learned congestion controller: prints the
//! trained Q-table's per-state greedy actions, visit counts, and a greedy
//! evaluation trace. Used to tune training; kept as a diagnostic.

use netsim::link::RoundOutcome;
use netsim::*;

fn main() {
    let config = LinkConfig::default();
    let mut link = Link::new(config, 7);
    let mut cc = LearnedCc::new(0.2, 7);
    let mut outcome = RoundOutcome::initial(&config);
    for round in 0..6000 {
        if round % 200 == 0 {
            cc.reset_window();
        }
        let w = cc.next_window(&outcome);
        outcome = link.round(w);
    }
    cc.freeze();
    println!("train mean util {:.3}", link.mean_utilization());
    for s in 0..30 {
        println!(
            "state {s:2}: visits {:6} greedy {}",
            cc.state_visits(s),
            cc.greedy_multiplier(s)
        );
    }
    // Greedy eval.
    let mut link2 = Link::new(config, 99);
    let mut eval = cc.clone();
    eval.reset_window();
    let mut o = RoundOutcome::initial(&config);
    let mut windows = vec![];
    for _ in 0..60 {
        let w = eval.next_window(&o);
        o = link2.round(w);
        windows.push(w as u32);
    }
    println!("eval windows: {windows:?}");
    for st in [2usize, 14, 27] {
        let row: Vec<String> = (0..5)
            .map(|a| format!("{:.3}", cc.q_value(st, a)))
            .collect();
        println!("Q[state {st}] = {row:?}");
    }
}
