//! A fixed-capacity cache with pluggable eviction.

use std::collections::HashMap;

use simkernel::DetRng;

/// How victims are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry.
    Lru,
    /// Evict a uniformly random entry (the paper's P4 comparator:
    /// "better hit rates than randomly selecting elements").
    Random,
}

/// A fixed-capacity key cache.
///
/// # Examples
///
/// ```
/// use cachesim::{Cache, EvictionPolicy};
///
/// let mut c = Cache::new(2, EvictionPolicy::Lru, 1);
/// assert!(!c.access(1));
/// c.insert(1);
/// assert!(c.access(1));
/// assert_eq!(c.hit_rate(), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    capacity: usize,
    policy: EvictionPolicy,
    /// Key -> (last-use tick, index into `order`).
    entries: HashMap<u64, (u64, usize)>,
    /// Dense key list for deterministic victim selection.
    order: Vec<u64>,
    tick: u64,
    hits: u64,
    lookups: u64,
    rng: DetRng,
}

impl Cache {
    /// Creates a cache holding at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize, policy: EvictionPolicy, seed: u64) -> Self {
        Cache {
            capacity: capacity.max(1),
            policy,
            entries: HashMap::new(),
            order: Vec::new(),
            tick: 0,
            hits: 0,
            lookups: 0,
            rng: DetRng::seed(seed),
        }
    }

    /// Looks up `key`, returning whether it hit (and refreshing recency).
    pub fn access(&mut self, key: u64) -> bool {
        self.tick += 1;
        self.lookups += 1;
        if let Some((stamp, _)) = self.entries.get_mut(&key) {
            *stamp = self.tick;
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Inserts `key`, evicting a victim if full.
    pub fn insert(&mut self, key: u64) {
        if self.entries.contains_key(&key) {
            return;
        }
        if self.entries.len() >= self.capacity {
            let victim = match self.policy {
                EvictionPolicy::Lru => self
                    .order
                    .iter()
                    .min_by_key(|k| (self.entries[k].0, **k))
                    .copied(),
                EvictionPolicy::Random => {
                    let idx = self.rng.index(self.order.len());
                    self.order.get(idx).copied()
                }
            };
            if let Some(v) = victim {
                self.remove(v);
            }
        }
        let pos = self.order.len();
        self.order.push(key);
        self.entries.insert(key, (self.tick, pos));
    }

    fn remove(&mut self, key: u64) {
        if let Some((_, pos)) = self.entries.remove(&key) {
            self.order.swap_remove(pos);
            if let Some(&moved) = self.order.get(pos) {
                if let Some(entry) = self.entries.get_mut(&moved) {
                    entry.1 = pos;
                }
            }
        }
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Lifetime hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resets hit counters (per-phase accounting), keeping contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.lookups = 0;
    }

    /// Switches the eviction policy at runtime (used when a `REPLACE`
    /// action installs the fallback cache behaviour).
    pub fn set_policy(&mut self, policy: EvictionPolicy) {
        self.policy = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(2, EvictionPolicy::Lru, 1);
        c.access(1);
        c.insert(1);
        c.access(2);
        c.insert(2);
        c.access(1); // 1 is now most recent.
        c.access(3);
        c.insert(3); // Evicts 2.
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn random_eviction_keeps_capacity() {
        let mut c = Cache::new(8, EvictionPolicy::Random, 2);
        for k in 0..100 {
            c.access(k);
            c.insert(k);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = Cache::new(2, EvictionPolicy::Lru, 3);
        c.insert(5);
        c.insert(5);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hit_rate_counts() {
        let mut c = Cache::new(4, EvictionPolicy::Lru, 4);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(1);
        c.insert(1);
        c.access(1);
        c.access(1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_counters();
        assert_eq!(c.lookups(), 0);
        assert!(!c.is_empty());
    }
}
