//! Cache access trace generators.

use simkernel::DetRng;

/// Trace parameters.
#[derive(Clone, Copy, Debug)]
pub struct CacheTraceConfig {
    /// Number of distinct keys.
    pub keys: u64,
    /// Zipf skew (0 = uniform).
    pub skew: f64,
    /// Fraction of accesses that are one-shot scans over fresh keys.
    pub scan_fraction: f64,
    /// Key-space offset (phase shifts move to fresh keys).
    pub base_key: u64,
    /// When non-zero, ignore the zipf parameters and emit a strict cyclic
    /// loop over this many keys (LRU's classic pathology).
    pub loop_keys: u64,
}

impl CacheTraceConfig {
    /// Phase 1: skewed reuse-heavy traffic where learned admission shines.
    pub fn zipf_with_scans(keys: u64) -> Self {
        CacheTraceConfig {
            keys,
            skew: 0.9,
            scan_fraction: 0.3,
            base_key: 0,
            loop_keys: 0,
        }
    }

    /// Phase 2 (alternative): a strict cyclic loop over `keys` fresh keys.
    /// If the loop is wider than the cache, LRU evicts every key just
    /// before its next use — hit rate collapses to zero — while random
    /// replacement retains a stable fraction.
    pub fn cyclic_loop(keys: u64) -> Self {
        CacheTraceConfig {
            keys,
            skew: 0.0,
            scan_fraction: 0.0,
            base_key: 1 << 40,
            loop_keys: keys,
        }
    }

    /// Phase 2: near-uniform traffic over a fresh key space — the frozen
    /// admission filter (trained to reject unfamiliar keys) rejects nearly
    /// everything and the learned cache decays below even random admission.
    pub fn uniform_shift(keys: u64) -> Self {
        CacheTraceConfig {
            keys,
            skew: 0.1,
            scan_fraction: 0.0,
            base_key: 1 << 40,
            loop_keys: 0,
        }
    }
}

/// The trace generator.
#[derive(Clone, Debug)]
pub struct CacheTrace {
    config: CacheTraceConfig,
    rng: DetRng,
    scan_next: u64,
}

impl CacheTrace {
    /// Creates a generator.
    pub fn new(config: CacheTraceConfig, seed: u64) -> Self {
        CacheTrace {
            config,
            rng: DetRng::seed(seed),
            scan_next: 0,
        }
    }

    /// Switches the pattern mid-run.
    pub fn set_config(&mut self, config: CacheTraceConfig) {
        self.config = config;
    }

    /// The next key to access.
    pub fn next_key(&mut self) -> u64 {
        if self.config.loop_keys > 0 {
            self.scan_next = (self.scan_next + 1) % self.config.loop_keys;
            return self.config.base_key + self.scan_next;
        }
        if self.rng.chance(self.config.scan_fraction) {
            // One-shot keys from a disjoint range, never repeated.
            self.scan_next += 1;
            return self.config.base_key + (1 << 20) + self.scan_next;
        }
        self.config.base_key + self.rng.zipf(self.config.keys as usize, self.config.skew) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_trace_reuses_head_keys() {
        let mut t = CacheTrace::new(CacheTraceConfig::zipf_with_scans(1000), 1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(t.next_key()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 200, "head key repeats: {max}");
    }

    #[test]
    fn scan_keys_never_repeat() {
        let mut config = CacheTraceConfig::zipf_with_scans(100);
        config.scan_fraction = 1.0;
        let mut t = CacheTrace::new(config, 2);
        let keys: Vec<u64> = (0..1000).map(|_| t.next_key()).collect();
        let unique: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len());
    }

    #[test]
    fn cyclic_loop_repeats_exactly() {
        let mut t = CacheTrace::new(CacheTraceConfig::cyclic_loop(5), 9);
        let a: Vec<u64> = (0..5).map(|_| t.next_key()).collect();
        let b: Vec<u64> = (0..5).map(|_| t.next_key()).collect();
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<std::collections::HashSet<_>>().len(), 5);
    }

    #[test]
    fn shift_moves_key_space() {
        let mut t = CacheTrace::new(CacheTraceConfig::zipf_with_scans(100), 3);
        let before = t.next_key();
        t.set_config(CacheTraceConfig::uniform_shift(100));
        let after = t.next_key();
        assert!(after > before);
        assert!(after >= 1 << 40);
    }
}
