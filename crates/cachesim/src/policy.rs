//! The learned admission policy (TinyLFU-flavoured).

use std::collections::HashMap;

use guardrails::policy::LearnedPolicy;
use mlkit::{LogisticRegression, Sgd};

/// Learned admission: on a miss, decide whether the key deserves a cache
/// slot, from a logistic model over `[frequency, recency]` features.
///
/// Trained online during a warmup window against observed reuse, then
/// frozen. On the training distribution it filters one-shot scan keys out
/// (beating admit-always LRU); after a key-space shift every key looks like
/// a never-seen scan key, it rejects nearly everything, and the hit rate
/// sinks below even the random baseline — the P4 violation.
#[derive(Debug)]
pub struct LearnedAdmission {
    model: LogisticRegression,
    optimizer: Sgd,
    /// Decayed per-key access counts (a tiny count-min stand-in).
    counts: HashMap<u64, (f64, u64)>,
    tick: u64,
    frozen: bool,
    inferences: u64,
}

impl Default for LearnedAdmission {
    fn default() -> Self {
        Self::new()
    }
}

impl LearnedAdmission {
    /// Creates an untrained policy.
    pub fn new() -> Self {
        LearnedAdmission {
            model: LogisticRegression::new(2),
            optimizer: Sgd::new(0.1),
            counts: HashMap::new(),
            tick: 0,
            frozen: false,
            inferences: 0,
        }
    }

    /// Records an access and returns the key's features
    /// `[log1p(decayed_count), min(gap/1000, 10)]`.
    pub fn observe(&mut self, key: u64) -> [f64; 2] {
        self.tick += 1;
        let entry = self.counts.entry(key).or_insert((0.0, self.tick));
        let gap = self.tick - entry.1;
        entry.0 = entry.0 * 0.5f64.powf(gap as f64 / 8192.0) + 1.0;
        entry.1 = self.tick;
        [entry.0.ln_1p(), (gap as f64 / 1_000.0).min(10.0)]
    }

    /// Trains on one example: did admitting a key with `features` pay off
    /// (was it re-accessed soon)?
    pub fn train(&mut self, features: &[f64; 2], reused: bool) {
        if self.frozen {
            return;
        }
        self.model.train_one(
            features,
            if reused { 1.0 } else { 0.0 },
            &mut self.optimizer,
        );
    }

    /// Freezes training (the model ships).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether the model is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Should the key with `features` be admitted?
    pub fn admit(&mut self, features: &[f64; 2]) -> bool {
        self.inferences += 1;
        self.model.predict(features)
    }

    /// Inferences served.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }
}

impl LearnedPolicy for LearnedAdmission {
    fn decide(&mut self, features: &[f64]) -> f64 {
        self.inferences += 1;
        self.model.predict_proba(features)
    }

    fn inference_cost(&self) -> u64 {
        200
    }

    fn retrain(&mut self) {
        self.frozen = false;
        self.model.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_to_reject_one_shot_keys() {
        let mut p = LearnedAdmission::new();
        // Hot keys: frequent, small gaps → reused. Scan keys: fresh → not.
        for _ in 0..3000 {
            p.train(&[2.5, 0.05], true);
            p.train(&[0.69, 10.0], false); // ln1p(1) ≈ 0.69, huge gap.
        }
        p.freeze();
        assert!(p.admit(&[2.5, 0.05]));
        assert!(!p.admit(&[0.69, 10.0]));
        assert!(p.inferences() >= 2);
    }

    #[test]
    fn observe_builds_frequency_and_recency() {
        let mut p = LearnedAdmission::new();
        let first = p.observe(42);
        assert!(
            (first[0] - 1f64.ln_1p()).abs() < 1e-12,
            "first access count 1"
        );
        for _ in 0..5 {
            p.observe(42);
        }
        let later = p.observe(42);
        assert!(later[0] > first[0], "frequency grows");
        assert!(later[1] < 0.01, "tight gaps");
        // A cold key after a long gap.
        p.observe(7);
        for _ in 0..5000 {
            p.observe(42);
        }
        let cold = p.observe(7);
        assert!(cold[1] > 4.0, "large gap feature: {}", cold[1]);
    }

    #[test]
    fn frozen_model_stops_learning() {
        let mut p = LearnedAdmission::new();
        p.train(&[2.0, 0.1], true);
        p.freeze();
        assert!(p.is_frozen());
        let before = p.decide(&[2.0, 0.1]);
        for _ in 0..100 {
            p.train(&[2.0, 0.1], false);
        }
        assert_eq!(p.decide(&[2.0, 0.1]), before);
    }

    #[test]
    fn retrain_resets() {
        let mut p = LearnedAdmission::new();
        for _ in 0..500 {
            p.train(&[2.0, 0.1], true);
        }
        p.freeze();
        LearnedPolicy::retrain(&mut p);
        assert!(!p.is_frozen());
        assert_eq!(p.decide(&[2.0, 0.1]), 0.5, "reset to uninformative");
    }
}
