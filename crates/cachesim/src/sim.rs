//! The cache scenario: learned admission vs. the paper's P4 comparator
//! ("better hit rates than randomly selecting elements"), with shadow
//! caches feeding the guardrail.

use std::sync::Arc;

use guardrails::monitor::{Hysteresis, MonitorEngine};
use guardrails::policy::{PolicyRegistry, VARIANT_FALLBACK, VARIANT_LEARNED};
use guardrails::{Telemetry, TelemetrySnapshot};
use simkernel::Nanos;

use crate::cache::{Cache, EvictionPolicy};
use crate::policy::LearnedAdmission;
use crate::trace::{CacheTrace, CacheTraceConfig};

/// The P4 guardrail, directly from Figure 1's cache-replacement row: the
/// learned cache must beat the random-policy shadow cache (with a small
/// noise margin, debounced 3-of-3 by the engine's hysteresis).
pub const P4_CACHE_GUARDRAIL: &str = r#"
guardrail cache-beats-random {
    trigger: { TIMER(5ms, 2ms) },
    rule: { LOAD(cache.learned_hit_rate) + 0.02 >= LOAD(cache.random_hit_rate) },
    action: {
        REPORT("learned cache lost to random", cache.learned_hit_rate, cache.random_hit_rate)
        REPLACE(cache_policy, fallback)
    }
}
"#;

/// Configuration of the cache scenario.
#[derive(Clone, Debug)]
pub struct CacheSimConfig {
    /// RNG seed.
    pub seed: u64,
    /// Cache capacity in keys.
    pub capacity: usize,
    /// Warmup accesses (training; heuristic admit-always serving).
    pub warmup: u64,
    /// Phase-1 accesses (zipf + scans).
    pub phase1: u64,
    /// Phase-2 accesses (a cyclic loop 1.5x the cache — LRU's pathology).
    pub phase2: u64,
    /// Install the P4 guardrail?
    pub with_guardrail: bool,
}

impl Default for CacheSimConfig {
    fn default() -> Self {
        CacheSimConfig {
            seed: 0xCAC4E,
            capacity: 512,
            warmup: 30_000,
            phase1: 30_000,
            phase2: 60_000,
            with_guardrail: false,
        }
    }
}

/// The output of one cache run.
#[derive(Clone, Debug)]
pub struct CacheReport {
    /// Main-cache hit rate in phase 1.
    pub phase1_hit_rate: f64,
    /// Main-cache hit rate in phase 2.
    pub phase2_hit_rate: f64,
    /// Main-cache hit rate in the last quarter of phase 2.
    pub phase2_tail_hit_rate: f64,
    /// LRU shadow hit rate in phase 2.
    pub shadow_lru_phase2: f64,
    /// Random shadow hit rate in phase 2.
    pub shadow_random_phase2: f64,
    /// Violations recorded.
    pub violations: usize,
    /// Whether the learned variant was active at the end.
    pub learned_active_at_end: bool,
    /// Deterministic engine telemetry counters for the run.
    pub telemetry: TelemetrySnapshot,
}

/// Nanoseconds per access (drives the TIMER trigger).
const ACCESS_PERIOD: Nanos = Nanos::from_nanos(500);

/// Runs the cache scenario.
///
/// # Panics
///
/// Panics if the built-in guardrail spec fails to compile (a crate bug).
pub fn run_cache_sim(config: CacheSimConfig) -> CacheReport {
    let registry = Arc::new(PolicyRegistry::new());
    registry
        .register("cache_policy", &[VARIANT_LEARNED, VARIANT_FALLBACK])
        .expect("fresh registry");
    let mut engine = MonitorEngine::with_parts(
        Arc::new(guardrails::FeatureStore::new()),
        Arc::clone(&registry),
    );
    let telemetry = Telemetry::new();
    engine.set_telemetry(Arc::clone(&telemetry));
    if config.with_guardrail {
        engine
            .install_str(P4_CACHE_GUARDRAIL)
            .expect("P4 spec compiles");
        engine
            .set_hysteresis("cache-beats-random", Hysteresis::n_of_m(3, 3))
            .expect("guardrail installed");
    }
    let store = engine.store();

    let mut main = Cache::new(config.capacity, EvictionPolicy::Lru, config.seed);
    let mut shadow_lru = Cache::new(config.capacity, EvictionPolicy::Lru, config.seed ^ 1);
    let mut shadow_random = Cache::new(config.capacity, EvictionPolicy::Random, config.seed ^ 2);
    let mut admission = LearnedAdmission::new();
    let mut trace = CacheTrace::new(
        CacheTraceConfig::zipf_with_scans(config.capacity as u64 * 2),
        config.seed ^ 0xF00D,
    );

    let total = config.warmup + config.phase1 + config.phase2;
    let shift_at = config.warmup + config.phase1;
    let mut now = Nanos::ZERO;
    let mut phase_hits = [0u64; 3];
    let mut phase_totals = [0u64; 3];
    let mut tail_hits = 0u64;
    let mut tail_total = 0u64;
    let mut window = [0u64; 6]; // (hits, totals) x (main, lru, random)

    for tick in 1..=total {
        now += ACCESS_PERIOD;
        if tick == config.warmup {
            admission.freeze();
        }
        if tick == shift_at {
            trace.set_config(CacheTraceConfig::cyclic_loop(
                (config.capacity as u64 * 3) / 2,
            ));
        }
        let key = trace.next_key();
        let features = admission.observe(key);

        // Shadow caches replay the same trace under the baselines.
        let lru_hit = shadow_lru.access(key);
        if !lru_hit {
            shadow_lru.insert(key);
        }
        let random_hit = shadow_random.access(key);
        if !random_hit {
            shadow_random.insert(key);
        }

        // The main cache runs the active policy.
        let learned_active = registry.is_active("cache_policy", VARIANT_LEARNED);
        let hit = main.access(key);
        if !hit {
            let admit = if learned_active && admission.is_frozen() {
                admission.admit(&features)
            } else {
                true
            };
            if admit {
                main.insert(key);
            }
        }

        // Training label: the key has demonstrated reuse (decayed frequency
        // of at least two) — the doorkeeper rule TinyLFU-style admission
        // distils.
        if !admission.is_frozen() {
            let reused = features[0] >= 2f64.ln_1p() - 1e-9;
            admission.train(&features, reused);
        }

        // Per-phase accounting.
        let phase = if tick <= config.warmup {
            0
        } else if tick <= shift_at {
            1
        } else {
            2
        };
        phase_totals[phase] += 1;
        if hit {
            phase_hits[phase] += 1;
        }
        if tick > total - config.phase2 / 4 {
            tail_total += 1;
            if hit {
                tail_hits += 1;
            }
        }

        // Windowed rates for the guardrail.
        window[0] += hit as u64;
        window[1] += 1;
        window[2] += lru_hit as u64;
        window[3] += 1;
        window[4] += random_hit as u64;
        window[5] += 1;
        if tick % 1024 == 0 {
            store.save(
                "cache.learned_hit_rate",
                window[0] as f64 / window[1] as f64,
            );
            store.save("cache.lru_hit_rate", window[2] as f64 / window[3] as f64);
            store.save("cache.random_hit_rate", window[4] as f64 / window[5] as f64);
            window = [0; 6];
            engine.advance_to(now);
        }

        // A REPLACE swap also flips the main cache's eviction policy: the
        // fallback is the paper's comparator, random replacement.
        if !registry.is_active("cache_policy", VARIANT_LEARNED) {
            main.set_policy(EvictionPolicy::Random);
        }
    }
    engine.advance_to(now);

    CacheReport {
        phase1_hit_rate: phase_hits[1] as f64 / phase_totals[1].max(1) as f64,
        phase2_hit_rate: phase_hits[2] as f64 / phase_totals[2].max(1) as f64,
        phase2_tail_hit_rate: tail_hits as f64 / tail_total.max(1) as f64,
        shadow_lru_phase2: 0.0_f64.max(shadow_lru.hit_rate()),
        shadow_random_phase2: 0.0_f64.max(shadow_random.hit_rate()),
        violations: engine.violations().len(),
        learned_active_at_end: registry.is_active("cache_policy", VARIANT_LEARNED),
        telemetry: telemetry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(with_guardrail: bool) -> CacheReport {
        run_cache_sim(CacheSimConfig {
            with_guardrail,
            ..CacheSimConfig::default()
        })
    }

    #[test]
    fn learned_admission_wins_phase1() {
        let report = run(false);
        assert!(
            report.phase1_hit_rate > 0.4,
            "phase1 {}",
            report.phase1_hit_rate
        );
    }

    #[test]
    fn loop_pattern_defeats_learned_lru_but_not_random() {
        let report = run(false);
        assert!(
            report.phase2_hit_rate < 0.1,
            "LRU loop pathology: {}",
            report.phase2_hit_rate
        );
        assert!(
            report.shadow_random_phase2 > report.phase2_hit_rate,
            "random {} vs learned {}",
            report.shadow_random_phase2,
            report.phase2_hit_rate
        );
        assert!(report.learned_active_at_end);
    }

    #[test]
    fn p4_guardrail_swaps_to_random_and_recovers() {
        let guarded = run(true);
        let unguarded = run(false);
        assert!(
            guarded.violations >= 3,
            "3-of-3 debounce then fire: {}",
            guarded.violations
        );
        assert!(!guarded.learned_active_at_end);
        assert!(
            guarded.phase2_tail_hit_rate > unguarded.phase2_tail_hit_rate + 0.1,
            "guarded tail {} vs unguarded {}",
            guarded.phase2_tail_hit_rate,
            unguarded.phase2_tail_hit_rate
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a.phase2_tail_hit_rate, b.phase2_tail_hit_rate);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.telemetry, b.telemetry, "telemetry counters determinize");
    }
}
