//! Cache-replacement substrate: the P4 (decision quality) setting.
//!
//! Figure 1's P4 row is cache replacement: "decisions of the model must
//! yield better hit rates than randomly selecting elements". This crate
//! provides a cache with LRU and random eviction baselines, a learned
//! admission policy (logistic regression over frequency/recency features,
//! TinyLFU-flavoured), **shadow caches** that replay the same trace under
//! the baselines so the guardrail has a live comparator, and the scenario
//! wiring the P4 guardrail to the monitor engine.

#![warn(missing_docs)]

pub mod cache;
pub mod policy;
pub mod sim;
pub mod trace;

pub use cache::{Cache, EvictionPolicy};
pub use policy::LearnedAdmission;
pub use sim::{run_cache_sim, CacheReport, CacheSimConfig};
pub use trace::{CacheTrace, CacheTraceConfig};
