//! Property test: batched ingestion of cache-access events is
//! *observationally identical* to sequential ingestion — the same property
//! `crates/core/tests/batch_equivalence.rs` pins for the engine in the
//! abstract, instantiated here with cachesim's domain vocabulary (admission
//! sizes, shadow hit rates, the P4 comparator) and extended to the
//! telemetry layer: the deterministic [`TelemetrySnapshot`] counters must
//! also match bit-for-bit, for any event history and any chunking.
//!
//! The only permitted divergence is measured wall time, which the snapshot
//! excludes by design.

use std::sync::Arc;

use guardrails::monitor::engine::{EngineStats, FnEvent, MonitorEngine};
use guardrails::{PolicyRegistry, Telemetry, TelemetrySnapshot};
use proptest::collection::vec;
use proptest::prelude::*;
use simkernel::Nanos;

/// Two monitors on the hot hook — one driven by the admission-size
/// argument, one by the shadow-cache hit rates the simulator publishes —
/// plus a bystander on the eviction hook so dispatch misses are exercised.
const SPECS: &str = r#"
guardrail admission-sane {
    trigger: { FUNCTION(cache_access) },
    rule: { ARG(0) < 2048 },
    action: { SAVE(cache.last_oversized, ARG(0)) RECORD(cache.oversized_admits, 1) }
}
guardrail cache-beats-random {
    trigger: { FUNCTION(cache_access) },
    rule: { LOAD(cache.learned_hit_rate) + 0.02 >= LOAD(cache.random_hit_rate) },
    action: { RECORD(cache.p4_violations, 1) }
}
guardrail bystander {
    trigger: { FUNCTION(cache_evict) },
    rule: { ARG(0) < 1 },
    action: { RECORD(cache.evict_hits, 1) }
}
"#;

fn fresh_engine() -> (MonitorEngine, Arc<Telemetry>) {
    let registry = Arc::new(PolicyRegistry::new());
    let mut engine = MonitorEngine::with_parts(Arc::new(guardrails::FeatureStore::new()), registry);
    let telemetry = Telemetry::new();
    engine.set_telemetry(Arc::clone(&telemetry));
    engine.install_str(SPECS).unwrap();
    (engine, telemetry)
}

/// One generated access: a time step, the object size offered to the
/// admission rule, and the two shadow hit rates written to the store just
/// before ingestion (so the P4 rule sees evolving state).
#[derive(Clone, Debug)]
struct Access {
    dt_us: u64,
    size: f64,
    learned_rate: f64,
    random_rate: f64,
}

fn accesses() -> impl Strategy<Value = Vec<Access>> {
    vec(
        (1u64..500, 0.0f64..4096.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(
            |(dt_us, size, learned_rate, random_rate)| Access {
                dt_us,
                size,
                learned_rate,
                random_rate,
            },
        ),
        0..60,
    )
}

/// Everything observable about a run except wall-clock noise, now including
/// the telemetry counters.
#[derive(Debug, PartialEq)]
struct Observable {
    violations: Vec<guardrails::monitor::Violation>,
    scalars: Vec<(String, f64)>,
    total_violations: u64,
    stats: EngineStats,
    telemetry: TelemetrySnapshot,
}

fn observe(engine: &MonitorEngine, telemetry: &Telemetry) -> Observable {
    let mut scalars = engine.store().scalars();
    scalars.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut stats = engine.stats();
    stats.eval_wall_ns = 0; // machine noise, excluded by design
    Observable {
        violations: engine.violations(),
        scalars,
        total_violations: engine.violation_log().total(),
        stats,
        telemetry: telemetry.snapshot(),
    }
}

/// Drives `engine` through `accesses` in batches split at `cuts`, store
/// writes applied chunk-first (the ring-buffer-drain convention from the
/// core test).
fn run_batched(engine: &mut MonitorEngine, accesses: &[Access], cuts: &[usize]) {
    let store = engine.store();
    let mut now = Nanos::ZERO;
    let mut begin = 0usize;
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (accesses.len() + 1)).collect();
    boundaries.push(accesses.len());
    boundaries.sort_unstable();
    for &end in &boundaries {
        if end <= begin {
            continue;
        }
        let chunk = &accesses[begin..end];
        let mut times = Vec::with_capacity(chunk.len());
        for access in chunk {
            now += Nanos::from_micros(access.dt_us);
            store.save("cache.learned_hit_rate", access.learned_rate);
            store.save("cache.random_hit_rate", access.random_rate);
            times.push(now);
        }
        let args: Vec<[f64; 1]> = chunk.iter().map(|a| [a.size]).collect();
        let events: Vec<FnEvent<'_>> = times
            .iter()
            .zip(&args)
            .map(|(&t, a)| FnEvent { now: t, args: a })
            .collect();
        engine.on_function_batch("cache_access", &events);
        begin = end;
    }
}

/// Sequential run with the same chunk-first store-write convention, so both
/// runs observe identical inputs.
fn run_sequential_chunked(engine: &mut MonitorEngine, accesses: &[Access], cuts: &[usize]) {
    let store = engine.store();
    let mut now = Nanos::ZERO;
    let mut begin = 0usize;
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (accesses.len() + 1)).collect();
    boundaries.push(accesses.len());
    boundaries.sort_unstable();
    for &end in &boundaries {
        if end <= begin {
            continue;
        }
        let chunk = &accesses[begin..end];
        let mut times = Vec::with_capacity(chunk.len());
        for access in chunk {
            now += Nanos::from_micros(access.dt_us);
            store.save("cache.learned_hit_rate", access.learned_rate);
            store.save("cache.random_hit_rate", access.random_rate);
            times.push(now);
        }
        for (access, &t) in chunk.iter().zip(&times) {
            engine.on_function("cache_access", t, &[access.size]);
        }
        begin = end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_ingestion_is_observationally_identical_to_sequential(
        accesses in accesses(),
        cuts in vec(0usize..61, 0..6),
    ) {
        let (mut sequential, seq_telemetry) = fresh_engine();
        let (mut batched, bat_telemetry) = fresh_engine();
        run_sequential_chunked(&mut sequential, &accesses, &cuts);
        run_batched(&mut batched, &accesses, &cuts);
        prop_assert_eq!(
            observe(&sequential, &seq_telemetry),
            observe(&batched, &bat_telemetry)
        );
        prop_assert_eq!(
            sequential.drain_commands(),
            batched.drain_commands(),
            "deferred commands must match"
        );
    }

    #[test]
    fn single_event_batches_match_plain_on_function(accesses in accesses()) {
        // Degenerate chunking: every batch holds exactly one event — the
        // contract `on_function` itself relies on.
        let (mut sequential, seq_telemetry) = fresh_engine();
        let (mut batched, bat_telemetry) = fresh_engine();
        let cuts: Vec<usize> = (0..=accesses.len()).collect();
        run_sequential_chunked(&mut sequential, &accesses, &cuts);
        run_batched(&mut batched, &accesses, &cuts);
        prop_assert_eq!(
            observe(&sequential, &seq_telemetry),
            observe(&batched, &bat_telemetry)
        );
    }
}
