//! Cross-crate integration: the paper's Listing 2 spec and the Figure 2
//! storage scenario, exercised through the public APIs end to end.

use guardrails::compile::compile_str;
use guardrails::prelude::*;
use simkernel::Nanos;
use storagesim::{run_fig2, LinnosSimConfig};

/// The exact spec text printed in the paper.
const LISTING_2: &str = r#"
guardrail low-false-submit {
    trigger: {
        TIMER(start_time, 1e9) // Periodically check every 1s.
    },
    rule: {
        LOAD(false_submit_rate) <= 0.05
    },
    action: {
        SAVE(ml_enabled, false)
    }
}
"#;

#[test]
fn listing2_compiles_to_a_tiny_verified_monitor() {
    let compiled = compile_str(LISTING_2).unwrap();
    assert_eq!(compiled.len(), 1);
    let g = &compiled[0];
    assert_eq!(g.name, "low-false-submit");
    assert_eq!(g.timers.len(), 1);
    assert_eq!(g.timers[0].interval, Nanos::from_secs(1));
    // The whole rule is three instructions; the verifier bounded it.
    assert_eq!(g.rules[0].program.len(), 3);
    assert!(g.rules[0].report.worst_case_fuel < 10);
    assert_eq!(g.rules[0].report.max_stack_depth, 2);
}

#[test]
fn listing2_round_trips_through_the_pretty_printer() {
    let spec = parse(LISTING_2).unwrap();
    let printed = guardrails::spec::pretty::print_spec(&spec);
    assert_eq!(parse(&printed).unwrap(), spec);
    assert!(printed.contains("LOAD(false_submit_rate) <= 0.05"));
}

#[test]
fn engine_applies_listing2_semantics() {
    let mut engine = MonitorEngine::new();
    engine.install_str(LISTING_2).unwrap();
    let store = engine.store();
    store.save("ml_enabled", 1.0);
    store.save("false_submit_rate", 0.04);
    engine.advance_to(Nanos::from_secs(10));
    assert!(store.flag("ml_enabled"), "4% is within bounds");
    store.save("false_submit_rate", 0.051);
    engine.advance_to(Nanos::from_secs(11));
    assert!(!store.flag("ml_enabled"), "5.1% trips the 5% bound");
}

/// The Figure 2 claim, quickly: the guardrail triggers after the shift and
/// the guarded run's post-shift latency beats the unguarded run's.
#[test]
fn figure2_shape_cross_crate() {
    let config = LinnosSimConfig {
        warmup: Nanos::from_secs(2),
        healthy: Nanos::from_secs(2),
        shifted: Nanos::from_secs(4),
        ..LinnosSimConfig::default()
    };
    let shift_at = config.shift_at();
    let (guarded, unguarded) = run_fig2(config);
    let trigger = guarded.guardrail_triggered_at.expect("triggers");
    assert!(trigger >= shift_at);
    assert!(!guarded.ml_enabled_at_end);
    assert!(unguarded.ml_enabled_at_end);
    assert!(guarded.shifted.mean_latency_us < unguarded.shifted.mean_latency_us);
    assert!(unguarded.shifted.false_submit_rate > 0.05);
}
