//! Property-based tests over the guardrail language pipeline:
//! pretty-print/parse round-trips, total evaluation, and
//! optimizer semantics preservation.

use guardrails::compile::ir::Program;
use guardrails::compile::lower::lower_expr;
use guardrails::compile::opt::fold_expr;
use guardrails::compile::verify::{verify, ExpectedType, VerifyLimits};
use guardrails::spec::ast::{ActionStmt, AggKind, BinOp, Expr, Guardrail, Spec, Trigger, UnOp};
use guardrails::spec::pretty::print_spec;
use guardrails::spec::{parse, parse_and_check};
use guardrails::vm::{DeltaState, EvalCtx, Vm};
use guardrails::FeatureStore;
use proptest::prelude::*;
use simkernel::Nanos;

/// One character of the key alphabet `[a-z0-9_]`.
fn key_char(i: usize) -> char {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    ALPHABET[i] as char
}

/// Identifier keys matching `[a-z][a-z0-9_]{0,6}(\.[a-z0-9_]{1,4})?`,
/// built from combinators (the shimmed proptest has no regex strategies).
fn arb_key() -> impl Strategy<Value = String> {
    (
        0usize..26,
        proptest::collection::vec(0usize..37, 0..7),
        proptest::option::of(proptest::collection::vec(0usize..37, 1..5)),
    )
        .prop_map(|(first, tail, suffix)| {
            let mut s = String::new();
            s.push((b'a' + first as u8) as char);
            s.extend(tail.into_iter().map(key_char));
            if let Some(suffix) = suffix {
                s.push('.');
                s.extend(suffix.into_iter().map(key_char));
            }
            s
        })
        .prop_filter("reserved words", |s| {
            !matches!(
                s.as_str(),
                "true" | "false" | "guardrail" | "trigger" | "rule" | "action"
            )
        })
}

/// Report messages matching `[ -~&&[^"\\]]{0,20}`: up to 20 printable ASCII
/// characters excluding the quote and backslash.
fn arb_report_message() -> impl Strategy<Value = String> {
    let printable: Vec<char> = (b' '..=b'~')
        .map(|b| b as char)
        .filter(|&c| c != '"' && c != '\\')
        .collect();
    let n = printable.len();
    proptest::collection::vec(0usize..n, 0..21)
        .prop_map(move |idxs| idxs.into_iter().map(|i| printable[i]).collect())
}

fn arb_number() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6..1e6f64, Just(0.0), Just(1.0), Just(0.05), Just(1e9),]
}

fn arb_agg() -> impl Strategy<Value = AggKind> {
    prop_oneof![
        Just(AggKind::Avg),
        Just(AggKind::Sum),
        Just(AggKind::Count),
        Just(AggKind::Min),
        Just(AggKind::Max),
        Just(AggKind::StdDev),
        Just(AggKind::Rate),
    ]
}

/// Numeric expressions (leaves + arithmetic), depth-bounded.
fn arb_num_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_number().prop_map(Expr::Number),
        arb_key().prop_map(Expr::Load),
        arb_key().prop_map(Expr::Ewma),
        arb_key().prop_map(Expr::Delta),
        (0u32..8).prop_map(Expr::Arg),
        (arb_agg(), arb_key(), 1.0..1e10f64).prop_map(|(kind, key, w)| Expr::Aggregate {
            kind,
            key,
            window: Box::new(Expr::Number(w.trunc().max(1.0))),
        }),
        (arb_key(), 0.0..=1.0f64, 1.0..1e10f64).prop_map(|(key, q, w)| Expr::Quantile {
            key,
            q: Box::new(Expr::Number((q * 100.0).round() / 100.0)),
            window: Box::new(Expr::Number(w.trunc().max(1.0))),
        }),
        (arb_key(), 0.0..=1.0f64).prop_map(|(key, q)| Expr::Hist {
            key,
            q: Box::new(Expr::Number((q * 100.0).round() / 100.0)),
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Div, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mod, a, b)),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnOp::Neg, Box::new(a))),
            inner.clone().prop_map(|a| Expr::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Clamp(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

/// Boolean expressions built over numeric comparisons.
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let cmp = (arb_num_expr(), arb_num_expr(), 0usize..6).prop_map(|(a, b, op)| {
        let op = [
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ][op];
        Expr::bin(op, a, b)
    });
    let leaf = prop_oneof![cmp, any::<bool>().prop_map(Expr::Bool)];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::And, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Or, a, b)),
            inner.prop_map(|a| Expr::Unary(UnOp::Not, Box::new(a))),
        ]
    })
}

fn arb_action() -> impl Strategy<Value = ActionStmt> {
    prop_oneof![
        (
            arb_report_message(),
            proptest::collection::vec(arb_key(), 0..3)
        )
            .prop_map(|(message, keys)| ActionStmt::Report { message, keys }),
        (arb_key(), arb_key()).prop_map(|(slot, variant)| ActionStmt::Replace { slot, variant }),
        arb_key().prop_map(|model| ActionStmt::Retrain { model }),
        (arb_key(), proptest::option::of(arb_num_expr()))
            .prop_map(|(target, steps)| ActionStmt::Deprioritize { target, steps }),
        (arb_key(), arb_num_expr()).prop_map(|(key, value)| ActionStmt::Save { key, value }),
        (arb_key(), arb_num_expr()).prop_map(|(key, value)| ActionStmt::Record { key, value }),
    ]
}

fn arb_guardrail(name: String) -> impl Strategy<Value = Guardrail> {
    (
        (0.0..1e9f64, 1.0..1e10f64).prop_map(|(start, interval)| Trigger::Timer {
            start: Expr::Number(start.trunc()),
            interval: Expr::Number(interval.trunc().max(1.0)),
            stop: None,
        }),
        arb_key(),
        proptest::collection::vec(arb_bool_expr(), 1..3),
        proptest::collection::vec(arb_action(), 1..4),
    )
        .prop_map(move |(timer, hook, rules, actions)| Guardrail {
            name: name.clone(),
            triggers: vec![timer, Trigger::Function { hook }],
            rules,
            actions,
        })
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(arb_bool_expr(), 0..1) // Dummy to vary shrink seeds.
        .prop_flat_map(|_| {
            (
                arb_guardrail("g-one".to_string()),
                arb_guardrail("g_two".to_string()),
            )
                .prop_map(|(a, b)| Spec {
                    guardrails: vec![a, b],
                })
        })
}

fn eval(program: &Program, store: &FeatureStore, args: &[f64]) -> f64 {
    let mut deltas = DeltaState::default();
    Vm::new()
        .run(
            program,
            &mut EvalCtx {
                store,
                now: Nanos::from_secs(1),
                args,
                deltas: &mut deltas,
            },
        )
        .value
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pretty-printing then re-parsing reproduces the same AST.
    #[test]
    fn print_parse_round_trips(spec in arb_spec()) {
        let printed = print_spec(&spec);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&spec, &reparsed, "printed:\n{}", printed);
    }

    /// Every generated spec passes checking, compiles, and verifies.
    #[test]
    fn generated_specs_compile_and_verify(spec in arb_spec()) {
        let printed = print_spec(&spec);
        let checked = parse_and_check(&printed)
            .unwrap_or_else(|e| panic!("check failed: {e}\n{printed}"));
        let compiled = guardrails::compile::compile(
            &checked,
            &guardrails::compile::CompileOptions::default(),
        )
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{printed}"));
        prop_assert_eq!(compiled.len(), 2);
        for g in &compiled {
            prop_assert!(!g.rules.is_empty());
            for rule in &g.rules {
                prop_assert!(rule.report.instrs > 0);
            }
        }
    }

    /// Verified rule programs always evaluate to exactly 0.0 or 1.0 — total
    /// evaluation with a strict boolean result, for any store contents.
    #[test]
    fn rule_evaluation_is_total_and_boolean(
        rule in arb_bool_expr(),
        values in proptest::collection::vec(-1e12..1e12f64, 4),
    ) {
        let program = lower_expr(&rule).expect("lowers");
        verify(&program, ExpectedType::Bool, &VerifyLimits::default()).expect("verifies");
        let store = FeatureStore::new();
        // Populate every key the program references with arbitrary values.
        for (i, key) in program.keys.iter().enumerate() {
            store.save(key, values[i % values.len()]);
        }
        let args = [values[0], values[1 % values.len()]];
        let out = eval(&program, &store, &args);
        prop_assert!(out == 0.0 || out == 1.0, "non-boolean result {out}");
    }

    /// The optimizer preserves semantics: folded and unfolded programs agree
    /// on every input.
    #[test]
    fn optimizer_preserves_semantics(
        rule in arb_bool_expr(),
        values in proptest::collection::vec(-1e9..1e9f64, 4),
    ) {
        let plain = lower_expr(&rule).expect("lowers");
        let folded = lower_expr(&fold_expr(&rule)).expect("lowers folded");
        let store = FeatureStore::new();
        for (i, key) in plain.keys.iter().enumerate() {
            store.save(key, values[i % values.len()]);
        }
        for (i, key) in folded.keys.iter().enumerate() {
            store.save(key, values[i % values.len()]);
        }
        let args = [values[2 % values.len()], values[3 % values.len()]];
        prop_assert_eq!(eval(&plain, &store, &args), eval(&folded, &store, &args));
    }

    /// Folding never grows the program.
    #[test]
    fn optimizer_never_grows_programs(rule in arb_bool_expr()) {
        let plain = lower_expr(&rule).expect("lowers");
        let folded = lower_expr(&fold_expr(&rule)).expect("lowers folded");
        prop_assert!(folded.len() <= plain.len(),
            "folded {} > plain {}", folded.len(), plain.len());
    }

    /// The static fuel bound really bounds dynamic fuel.
    #[test]
    fn dynamic_fuel_never_exceeds_static_bound(
        rule in arb_bool_expr(),
        values in proptest::collection::vec(-100.0..100.0f64, 4),
    ) {
        let program = lower_expr(&rule).expect("lowers");
        let store = FeatureStore::new();
        for (i, key) in program.keys.iter().enumerate() {
            store.save(key, values[i % values.len()]);
        }
        let mut deltas = DeltaState::default();
        let result = Vm::new().run(
            &program,
            &mut EvalCtx {
                store: &store,
                now: Nanos::from_secs(1),
                args: &[],
                deltas: &mut deltas,
            },
        );
        prop_assert!(result.fuel <= program.worst_case_fuel());
    }
}
