//! Property-based tests on core data-structure invariants: the feature
//! store's windowed aggregates against naive reference implementations,
//! histogram quantile bounds, drift statistics, and kernel-substrate types.

use guardrails::spec::ast::AggKind;
use guardrails::stats::{ks_statistic, psi};
use guardrails::store::histogram::Histogram;
use guardrails::store::window::WindowSeries;
use guardrails::FeatureStore;
use proptest::prelude::*;
use simkernel::{JainIndex, MovingAverage, Nanos, Priority, RunningStats};

fn arb_samples() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..10_000_000_000, -1e6..1e6f64), 1..200).prop_map(|mut v| {
        v.sort_by_key(|&(t, _)| t);
        v
    })
}

/// Naive reference for the windowed aggregates.
fn reference_aggregate(samples: &[(u64, f64)], kind: AggKind, window_ns: u64, now_ns: u64) -> f64 {
    let horizon = now_ns.saturating_sub(window_ns);
    let vals: Vec<f64> = samples
        .iter()
        .filter(|&&(t, _)| t >= horizon && t <= now_ns)
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    let n = vals.len() as f64;
    match kind {
        AggKind::Avg => vals.iter().sum::<f64>() / n,
        AggKind::Sum => vals.iter().sum(),
        AggKind::Count => n,
        AggKind::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
        AggKind::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggKind::StdDev => {
            if vals.len() < 2 {
                0.0
            } else {
                let mean = vals.iter().sum::<f64>() / n;
                (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
            }
        }
        AggKind::Rate => n / (window_ns as f64 / 1e9),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Window aggregates match a naive reference implementation.
    #[test]
    fn window_aggregates_match_reference(
        samples in arb_samples(),
        window_ns in 1u64..5_000_000_000,
        kind_idx in 0usize..7,
    ) {
        let kind = [
            AggKind::Avg, AggKind::Sum, AggKind::Count, AggKind::Min,
            AggKind::Max, AggKind::StdDev, AggKind::Rate,
        ][kind_idx];
        let mut series = WindowSeries::new(Nanos::from_secs(100), 100_000);
        for &(t, v) in &samples {
            series.push(Nanos::from_nanos(t), v);
        }
        let now = samples.last().unwrap().0;
        let got = series.aggregate(kind, Nanos::from_nanos(window_ns), Nanos::from_nanos(now));
        let want = reference_aggregate(&samples, kind, window_ns, now);
        let tolerance = 1e-6 * (1.0 + want.abs());
        prop_assert!((got - want).abs() <= tolerance, "{kind:?}: got {got}, want {want}");
    }

    /// Windowed quantiles are bounded by the window's min/max and monotone in q.
    #[test]
    fn window_quantiles_bounded_and_monotone(
        samples in arb_samples(),
        q1 in 0.0..=1.0f64,
        q2 in 0.0..=1.0f64,
    ) {
        let mut series = WindowSeries::new(Nanos::from_secs(100), 100_000);
        for &(t, v) in &samples {
            series.push(Nanos::from_nanos(t), v);
        }
        let now = Nanos::from_nanos(samples.last().unwrap().0);
        let window = Nanos::from_secs(100);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = series.quantile(lo, window, now);
        let v_hi = series.quantile(hi, window, now);
        prop_assert!(v_lo <= v_hi + 1e-12, "quantiles monotone: {v_lo} vs {v_hi}");
        let min = series.aggregate(AggKind::Min, window, now);
        let max = series.aggregate(AggKind::Max, window, now);
        prop_assert!(v_lo >= min - 1e-12 && v_hi <= max + 1e-12);
    }

    /// Histogram quantiles are monotone in q, bounded by observed min/max,
    /// and within one bucket's relative error of exact order statistics.
    #[test]
    fn histogram_quantiles_sound(values in proptest::collection::vec(0.0..1e9f64, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let estimate = h.quantile(q);
            prop_assert!(estimate >= sorted[0] - 1e-9);
            prop_assert!(estimate <= sorted[sorted.len() - 1] + 1e-9);
            // Same nearest-rank convention as the histogram: the smallest
            // value with cumulative count >= ceil(q * n).
            let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize - 1).min(sorted.len() - 1);
            let exact = sorted[rank];
            // One bucket is ~15% relative width; allow two buckets of slack
            // plus an absolute floor for the sub-1.0 underflow bucket.
            if exact > 2.0 {
                prop_assert!(
                    estimate <= exact * 1.4 + 2.0 && estimate >= exact / 1.4 - 2.0,
                    "q={q}: estimate {estimate} vs exact {exact}"
                );
            }
        }
        // Monotonicity across a q sweep.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            prop_assert!(v >= last - 1e-9);
            last = v;
        }
    }

    /// The KS statistic is in [0, 1], zero on identical samples, symmetric.
    #[test]
    fn ks_statistic_properties(
        a in proptest::collection::vec(-1e6..1e6f64, 1..100),
        b in proptest::collection::vec(-1e6..1e6f64, 1..100),
    ) {
        let d = ks_statistic(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - ks_statistic(&b, &a)).abs() < 1e-12, "symmetry");
        prop_assert!(ks_statistic(&a, &a) == 0.0, "identity");
    }

    /// PSI is non-negative and zero for identical samples.
    #[test]
    fn psi_properties(a in proptest::collection::vec(-1e6..1e6f64, 2..200)) {
        prop_assert!(psi(&a, &a, 10) < 1e-9);
        let shifted: Vec<f64> = a.iter().map(|x| x + 1e7).collect();
        prop_assert!(psi(&a, &shifted, 10) >= 0.0);
    }

    /// RunningStats::merge is equivalent to sequential accumulation at any
    /// split point.
    #[test]
    fn running_stats_merge_associative(
        values in proptest::collection::vec(-1e6..1e6f64, 1..100),
        split in 0usize..100,
    ) {
        let split = split % (values.len() + 1);
        let mut all = RunningStats::new();
        for &v in &values {
            all.push(v);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &v in &values[..split] {
            left.push(v);
        }
        for &v in &values[split..] {
            right.push(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!((left.variance() - all.variance()).abs() < 1e-4 * (1.0 + all.variance()));
    }

    /// MovingAverage over a window of size w equals the mean of the last w values.
    #[test]
    fn moving_average_matches_tail_mean(
        values in proptest::collection::vec(-1e3..1e3f64, 1..100),
        window in 1usize..20,
    ) {
        let mut m = MovingAverage::new(window);
        let mut last = 0.0;
        for &v in &values {
            last = m.push(v);
        }
        let tail: Vec<f64> = values.iter().rev().take(window).copied().collect();
        let want = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!((last - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    /// Jain's index is in (0, 1] and 1 exactly for equal shares.
    #[test]
    fn jain_index_bounds(shares in proptest::collection::vec(0.0..1e6f64, 1..50)) {
        let j = JainIndex::of(&shares);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "j = {j}");
        let equal = vec![7.5; shares.len()];
        prop_assert!((JainIndex::of(&equal) - 1.0).abs() < 1e-12);
    }

    /// Priority always clamps into the legal nice range; weights are
    /// monotone decreasing in nice level.
    #[test]
    fn priority_clamp_and_weight_monotone(a in -1000i32..1000, b in -1000i32..1000) {
        let pa = Priority::new(a);
        let pb = Priority::new(b);
        prop_assert!((-20..=19).contains(&pa.nice()));
        if pa.nice() < pb.nice() {
            prop_assert!(pa.weight() > pb.weight());
        }
    }

    /// The store's scalar layer: last write wins, incr sums exactly.
    #[test]
    fn store_scalar_semantics(writes in proptest::collection::vec(-1e9..1e9f64, 1..50)) {
        let store = FeatureStore::new();
        for &w in &writes {
            store.save("k", w);
        }
        prop_assert_eq!(store.load("k"), writes.last().copied());
        let store2 = FeatureStore::new();
        let mut sum = 0.0;
        for &w in &writes {
            store2.incr("c", w);
            sum += w;
        }
        prop_assert!((store2.load("c").unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()));
    }
}
