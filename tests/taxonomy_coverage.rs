//! Executable coverage of the paper's Figure 1 taxonomy: every property
//! P1–P6 detectable, every action A1–A4 applicable, across crates.

use guardrails::action::retrain::RetrainLimiter;
use guardrails::action::Command;
use guardrails::monitor::{Hysteresis, MonitorEngine};
use guardrails::props;
use guardrails::stats::{DriftDetector, SensitivityProbe};
use simkernel::{Nanos, Priority, TaskControl, TaskTable};

/// P1: a drift detector feeds the in-distribution guardrail, which reports
/// and requests a retrain (A1 + A3).
#[test]
fn p1_in_distribution_detects_drift_and_requests_retrain() {
    let mut engine = MonitorEngine::new();
    engine
        .install_str(&props::p1_in_distribution(
            "p1",
            "io_model",
            0.25,
            Nanos::from_secs(1),
        ))
        .unwrap();
    let store = engine.store();

    let mut drift = DriftDetector::new("io_model.input", 256, 7);
    for i in 0..2000 {
        drift.observe_reference((i % 50) as f64);
    }
    drift.freeze();

    // In-distribution traffic: no violation.
    for i in 0..500 {
        drift.observe_live(((i * 7) % 50) as f64);
    }
    drift.publish(&store, Nanos::from_secs(1));
    engine.advance_to(Nanos::from_secs(2));
    assert!(engine.violations().is_empty());

    // Shifted traffic: violation, report, retrain command.
    for i in 0..500 {
        drift.observe_live((i % 50) as f64 + 500.0);
    }
    drift.publish(&store, Nanos::from_secs(3));
    engine.advance_to(Nanos::from_secs(4));
    assert!(!engine.violations().is_empty(), "P1 fires on drift");
    assert!(!engine.reports().is_empty(), "A1 report written");
    let commands = engine.drain_commands();
    assert!(
        commands
            .iter()
            .any(|(_, c)| matches!(c, Command::Retrain { model, .. } if model == "io_model")),
        "A3 retrain requested"
    );
}

/// P2: a sensitivity probe feeds the robustness guardrail.
#[test]
fn p2_robustness_detects_discontinuous_model() {
    let mut engine = MonitorEngine::new();
    engine
        .install_str(&props::p2_robustness(
            "p2",
            "cc_model",
            50.0,
            Nanos::from_secs(1),
        ))
        .unwrap();
    let store = engine.store();

    let mut probe = SensitivityProbe::new("cc_model", 0.05, 16, 3);
    // A smooth model: no violation.
    probe.probe_and_publish(&[1.0, 2.0], |x| x[0] + x[1], &store, Nanos::from_secs(1));
    engine.advance_to(Nanos::from_secs(2));
    assert!(engine.violations().is_empty());

    // A cliff at the operating point: gain explodes, guardrail fires.
    probe.probe_and_publish(
        &[1.0, 2.0],
        |x| if x[0] >= 1.0 { 1000.0 } else { 0.0 },
        &store,
        Nanos::from_secs(3),
    );
    engine.advance_to(Nanos::from_secs(4));
    assert!(!engine.violations().is_empty(), "P2 fires on sensitivity");
}

/// P3 + A2: out-of-bounds outputs swap in the fallback via the registry.
#[test]
fn p3_bounds_replace_fallback() {
    let mut engine = MonitorEngine::new();
    let registry = engine.registry();
    registry
        .register("alloc_policy", &["learned", "fallback"])
        .unwrap();
    engine
        .install_str(&props::p3_output_bounds(
            "p3",
            "alloc_decide",
            "alloc_policy",
            0.0,
            4096.0,
        ))
        .unwrap();

    engine.on_function("alloc_decide", Nanos::from_micros(1), &[1024.0]);
    assert!(registry.is_active("alloc_policy", "learned"));
    engine.on_function("alloc_decide", Nanos::from_micros(2), &[9999.0]);
    assert!(registry.is_active("alloc_policy", "fallback"), "A2 swapped");
    assert_eq!(engine.stats().trips, 1);
}

/// P4: windowed decision quality (the paper's "accuracy > 90% over a
/// window" example).
#[test]
fn p4_quality_fires_on_windowed_accuracy() {
    let mut engine = MonitorEngine::new();
    let registry = engine.registry();
    registry
        .register("io_policy", &["learned", "fallback"])
        .unwrap();
    engine
        .install_str(&props::p4_decision_quality(
            "p4",
            "io_model",
            "io_policy",
            0.9,
            Nanos::from_secs(2),
            Nanos::from_secs(1),
        ))
        .unwrap();
    let store = engine.store();

    // Healthy accuracy samples.
    for t in 0..4 {
        store.record("io_model.accuracy", Nanos::from_millis(500 * t), 0.95);
    }
    engine.advance_to(Nanos::from_secs(2));
    assert!(engine.violations().is_empty());

    // Accuracy collapses.
    for t in 4..10 {
        store.record("io_model.accuracy", Nanos::from_millis(500 * t), 0.5);
    }
    engine.advance_to(Nanos::from_secs(5));
    assert!(!engine.violations().is_empty());
    assert!(registry.is_active("io_policy", "fallback"));
}

/// P5: inference overhead must be covered by policy gains.
#[test]
fn p5_overhead_fires_when_gains_evaporate() {
    let mut engine = MonitorEngine::new();
    let registry = engine.registry();
    registry
        .register("io_policy", &["learned", "fallback"])
        .unwrap();
    engine
        .install_str(&props::p5_decision_overhead(
            "p5",
            "io_model",
            "io_policy",
            Nanos::from_secs(2),
            Nanos::from_secs(1),
        ))
        .unwrap();
    let store = engine.store();

    // Gains comfortably exceed inference cost.
    for t in 0..20 {
        let at = Nanos::from_millis(100 * t);
        store.record("io_model.inference_ns", at, 4_000.0);
        store.record("io_model.gain_ns", at, 50_000.0);
    }
    engine.advance_to(Nanos::from_secs(2));
    assert!(engine.violations().is_empty());

    // The workload stops benefiting; inference cost is now pure overhead.
    for t in 20..50 {
        let at = Nanos::from_millis(100 * t);
        store.record("io_model.inference_ns", at, 4_000.0);
        store.record("io_model.gain_ns", at, 100.0);
    }
    engine.advance_to(Nanos::from_secs(5));
    assert!(!engine.violations().is_empty());
    assert!(registry.is_active("io_policy", "fallback"));
}

/// P6 + A4: starvation triggers deprioritization applied through the
/// simkernel task table (the OOM-killer analogue with steps >= 40 kills).
#[test]
fn p6_starvation_deprioritizes_and_kills_via_task_table() {
    let mut engine = MonitorEngine::new();
    engine
        .install_str(
            r#"guardrail p6 {
                trigger: { TIMER(0, 1s) },
                rule: { LOAD(sched.max_wait_ns) <= 100ms },
                action: {
                    DEPRIORITIZE(victim, 10)
                    DEPRIORITIZE(hog, 40)
                }
            }"#,
        )
        .unwrap();
    let store = engine.store();

    let mut table = TaskTable::new();
    let victim = table.spawn("victim", Priority::DEFAULT);
    let hog = table.spawn("hog", Priority::DEFAULT);
    table.get_mut(hog).unwrap().resident_bytes = 1 << 30;

    store.save("sched.max_wait_ns", 2e8); // 200ms > 100ms bound.
    engine.advance_to(Nanos::ZERO);
    for (_, command) in engine.drain_commands() {
        if let Command::Deprioritize { target, steps, .. } = command {
            let id = if target == "victim" { victim } else { hog };
            if steps >= 40 {
                assert!(table.kill(id));
            } else {
                assert!(table.set_priority(id, table.get(id).unwrap().priority.demoted(steps)));
            }
        }
    }
    assert_eq!(table.get(victim).unwrap().priority, Priority::new(10));
    assert_eq!(table.alive_tasks(), vec![victim], "hog killed (A4)");
    assert_eq!(table.resident_bytes(hog), None, "memory released");
}

/// §3.2's abuse protection: a malicious tight loop of violations cannot
/// flood the retrain queue.
#[test]
fn retrain_abuse_is_rate_limited() {
    let mut engine = MonitorEngine::new();
    engine.set_retrain_limiter(RetrainLimiter::new(
        Nanos::from_secs(60),
        2,
        Nanos::from_secs(600),
    ));
    engine
        .install_str(
            "guardrail abuse { trigger: { TIMER(0, 10ms) }, rule: { LOAD(x) > 0 }, action: { RETRAIN(model) } }",
        )
        .unwrap();
    // 10k violation ticks in 100 seconds.
    engine.advance_to(Nanos::from_secs(100));
    let retrains = engine
        .drain_commands()
        .iter()
        .filter(|(_, c)| matches!(c, Command::Retrain { .. }))
        .count();
    assert!(retrains <= 2, "budget bound holds: {retrains}");
    assert!(engine.stats().violations > 9_000);
}

/// §6's feedback-loop concern: two antagonistic guardrails oscillate a
/// shared knob; hysteresis cooldowns damp the oscillation.
#[test]
fn hysteresis_damps_antagonistic_guardrails() {
    let spec = r#"
        guardrail push-up {
            trigger: { TIMER(0, 10ms) },
            rule: { LOAD(knob) >= 12 },
            action: { SAVE(knob, LOAD(knob) + 10) }
        }
        guardrail push-down {
            trigger: { TIMER(5ms, 10ms) },
            rule: { LOAD(knob) <= 8 },
            action: { SAVE(knob, LOAD(knob) - 10) }
        }
    "#;
    let oscillations = |hysteresis: Option<Hysteresis>| -> u64 {
        let mut engine = MonitorEngine::new();
        engine.install_str(spec).unwrap();
        if let Some(h) = hysteresis {
            engine.set_hysteresis("push-up", h).unwrap();
            engine.set_hysteresis("push-down", h).unwrap();
        }
        engine.store().save("knob", 0.0);
        engine.advance_to(Nanos::from_secs(2));
        engine.stats().trips
    };
    let raw = oscillations(None);
    let damped = oscillations(Some(Hysteresis::cooldown(Nanos::from_millis(200))));
    assert!(raw > 50, "undamped system oscillates: {raw} trips");
    assert!(
        damped * 5 < raw,
        "cooldown damps the loop: {damped} vs {raw}"
    );
}

/// §3.3 incremental deployment: guardrails can be added and toggled one at
/// a time on a live engine.
#[test]
fn incremental_deployment_on_live_engine() {
    let mut engine = MonitorEngine::new();
    let store = engine.store();
    store.save("a", 10.0);
    store.save("b", 10.0);

    engine
        .install_str("guardrail first { trigger: { TIMER(0, 1s) }, rule: { LOAD(a) < 5 }, action: { RECORD(viol_a, 1) } }")
        .unwrap();
    engine.advance_to(Nanos::from_secs(3));
    let after_first = engine.stats().violations;
    assert!(after_first > 0);

    // Add a second guardrail mid-flight; it starts from "now".
    engine
        .install_str("guardrail second { trigger: { TIMER(0, 1s) }, rule: { LOAD(b) < 5 }, action: { RECORD(viol_b, 1) } }")
        .unwrap();
    engine.advance_to(Nanos::from_secs(6));
    assert!(engine.stats().violations > after_first * 2 - 2);

    // Disable the first: only the second keeps evaluating.
    engine.set_enabled("first", false).unwrap();
    let before = engine.stats().evaluations;
    engine.advance_to(Nanos::from_secs(9));
    let delta = engine.stats().evaluations - before;
    assert!(
        (3..=4).contains(&delta),
        "only one monitor evaluating: {delta}"
    );
}

/// §3.3 auto-tightening: deploy a guardrail with a relaxed threshold that
/// lives in the feature store, then let a calibrator walk it toward the
/// observed steady state until the guardrail starts catching regressions it
/// would originally have missed.
#[test]
fn calibrator_tightens_a_relaxed_guardrail() {
    use guardrails::props::Calibrator;

    let mut engine = MonitorEngine::new();
    engine
        .install_str(
            r#"guardrail adaptive-latency {
                trigger: { TIMER(0, 100ms) },
                rule: { LOAD(io.latency_us) <= LOAD(io.latency_bound) },
                action: { REPORT("latency regression", io.latency_us, io.latency_bound) }
            }"#,
        )
        .unwrap();
    let store = engine.store();
    let mut calibrator = Calibrator::new("io.latency_bound", 10_000.0, 1.5, 0.3, 50.0);
    calibrator.install(&store);

    // Steady state: ~100µs latencies. A relaxed 10_000µs bound misses a 3x
    // regression; the calibrator walks the bound toward 150µs.
    let mut now = Nanos::ZERO;
    for _ in 0..50 {
        now += Nanos::from_millis(100);
        store.save("io.latency_us", 100.0);
        calibrator.step(&store, 100.0);
        engine.advance_to(now);
    }
    assert!(engine.violations().is_empty(), "steady state stays clean");
    let bound = store.load("io.latency_bound").unwrap();
    assert!(bound < 200.0, "bound tightened to {bound}");

    // The same 300µs regression the relaxed bound would have ignored:
    store.save("io.latency_us", 300.0);
    now += Nanos::from_millis(100);
    engine.advance_to(now);
    assert!(
        !engine.violations().is_empty(),
        "tightened guardrail catches it"
    );
}

/// End-to-end system properties spanning multiple learned agents (the
/// richer-than-SOL scope §2 argues for): one guardrail over metrics
/// published by two different subsystems.
#[test]
fn cross_subsystem_end_to_end_property() {
    let mut engine = MonitorEngine::new();
    engine
        .install_str(
            r#"guardrail end-to-end-latency {
                trigger: { TIMER(0, 1s) },
                rule: {
                    AVG(io.latency_us, 5s) + AVG(mem.latency_us, 5s) <= 1500
                },
                action: { REPORT("end-to-end budget exceeded", io.latency_us, mem.latency_us) }
            }"#,
        )
        .unwrap();
    let store = engine.store();
    // Both subsystems healthy: each well under budget.
    for t in 0..10 {
        let at = Nanos::from_millis(200 * t);
        store.record("io.latency_us", at, 400.0);
        store.record("mem.latency_us", at, 300.0);
    }
    engine.advance_to(Nanos::from_secs(2));
    assert!(engine.violations().is_empty());
    // Each subsystem individually "fine-ish", but the sum blows the budget —
    // a property no per-agent callback can express.
    for t in 10..30 {
        let at = Nanos::from_millis(200 * t);
        store.record("io.latency_us", at, 900.0);
        store.record("mem.latency_us", at, 800.0);
    }
    engine.advance_to(Nanos::from_secs(6));
    assert!(!engine.violations().is_empty());
}
