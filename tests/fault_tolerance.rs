//! Cross-crate integration: the chaos harness (`guardrails::fault`) driving
//! the LinnOS setting (`storagesim::faultsim`) through the public APIs, and
//! the hardened runtime's counter-mechanisms composing end to end.

use guardrails::monitor::{ResilienceConfig, WatchdogConfig};
use guardrails::prelude::*;
use storagesim::{fault_label, fault_matrix, run_fault_pair};

#[test]
fn fault_matrix_covers_the_taxonomy_with_stable_labels() {
    let labels: Vec<String> = fault_matrix().iter().map(fault_label).collect();
    // Every FaultKind variant appears, poison in all three modes.
    for expected in [
        "device_brownout",
        "gc_storm",
        "poison_nan",
        "poison_inf",
        "poison_out_of_range",
        "dropped_saves",
        "fuel_exhaustion",
        "replace_target_missing",
        "retrain_panic",
    ] {
        assert!(labels.contains(&expected.to_string()), "missing {expected}");
    }
    assert_eq!(labels.len(), 9);
}

#[test]
fn hardened_runtime_beats_seed_runtime_under_injected_faults() {
    // One contrast scenario end to end through the umbrella-level public
    // APIs (the full sweep lives in storagesim's unit tests and E9).
    let (seed_run, hardened) = run_fault_pair(FaultKind::FuelExhaustion { limit: 2 }, 0xF162);
    assert!(seed_run.wedged && !hardened.wedged);
    assert!(hardened.watchdog_trips > 0);
    assert_eq!(seed_run.watchdog_trips, 0);
}

#[test]
fn resilience_mechanisms_compose_on_one_engine() {
    // Quarantine + fallback REPLACE + fail-closed watchdog, all active on a
    // single engine at once, none interfering with the others.
    let mut engine = MonitorEngine::new();
    engine.set_resilience(ResilienceConfig {
        watchdog: Some(WatchdogConfig::fail_closed().with_max_faults(2)),
        ..ResilienceConfig::hardened()
    });
    let registry = engine.registry();
    registry
        .register("io_submit", &[VARIANT_LEARNED, "safe", "default"])
        .unwrap();
    registry
        .set_default_variant("io_submit", "default")
        .unwrap();
    registry.unregister_variant("io_submit", "safe").unwrap();
    engine
        .install_str(
            r#"
            guardrail failover {
                trigger: { TIMER(start_time, 1s) },
                rule: { LOAD(err_rate) <= 0.05 },
                action: { REPLACE(io_submit, safe) }
            }
            "#,
        )
        .unwrap();
    let store = engine.store();
    store.save("err_rate", f64::NAN); // quarantined, not stored
    assert_eq!(store.load("err_rate"), None);
    assert_eq!(store.poison_count("err_rate"), 1);

    store.save("err_rate", 0.2);
    engine.advance_to(Nanos::from_secs(2));
    assert!(
        registry.is_active("io_submit", "default"),
        "REPLACE fell back to the registered default"
    );

    // Now break the rule itself: fuel exhaustion trips the watchdog.
    engine.set_rule_fuel_limit(Some(1));
    engine.advance_to(Nanos::from_secs(6));
    let stats = engine.stats();
    assert_eq!(stats.watchdog_trips, 1);
    assert!(stats.rule_faults >= 2);
}
