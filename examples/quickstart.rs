//! Quickstart: the paper's Listing 2 guardrail, end to end.
//!
//! Compiles the exact spec text from the paper, installs it into a monitor
//! engine, feeds the feature store a degrading false-submit rate, and shows
//! the guardrail detecting the violation and disabling the learned policy.
//!
//! Run with: `cargo run --example quickstart`

use guardrails_repro::guardrails::prelude::*;

/// The spec text from the paper's Listing 2, verbatim.
const LISTING_2: &str = r#"
guardrail low-false-submit {
    trigger: {
        TIMER(start_time, 1e9) // Periodically check every 1s.
    },
    rule: {
        LOAD(false_submit_rate) <= 0.05
    },
    action: {
        SAVE(ml_enabled, false)
    }
}
"#;

fn main() {
    // 1. Parse → check → compile → verify → install.
    let mut engine = MonitorEngine::new();
    let ids = engine.install_str(LISTING_2).expect("Listing 2 compiles");
    println!(
        "installed {} guardrail(s): {:?}",
        ids.len(),
        engine.monitor_names()
    );

    // 2. The kernel side: the learned policy consults `ml_enabled`, and
    //    instrumentation maintains `false_submit_rate` in the feature store.
    let store = engine.store();
    store.save("ml_enabled", 1.0);

    // Healthy operation: 1% false submits.
    store.save("false_submit_rate", 0.01);
    engine.advance_to(Nanos::from_secs(5));
    println!(
        "t=5s   rate=1%   ml_enabled={}  violations={}",
        store.flag("ml_enabled"),
        engine.violations().len()
    );

    // Distribution shift: the model degrades, false submits hit 20%.
    store.save("false_submit_rate", 0.20);
    engine.advance_to(Nanos::from_secs(8));
    println!(
        "t=8s   rate=20%  ml_enabled={}  violations={}",
        store.flag("ml_enabled"),
        engine.violations().len()
    );

    for violation in engine.violations() {
        println!("  {violation}");
    }

    // 3. Every monitor's overhead is accounted (property P5).
    for report in engine.overhead_reports() {
        println!(
            "overhead of '{}': {} evaluations, {} modeled total ({} per check)",
            report.guardrail,
            report.account.evaluations,
            report.account.modeled(),
            report.account.modeled_per_evaluation(),
        );
    }
}
