//! The Figure 2 scenario: LinnOS-style learned I/O latency prediction on a
//! replicated flash array, with and without the false-submit guardrail.
//!
//! Prints the moving-average latency series of both runs as sparklines plus
//! the guardrail trigger point — the textual rendering of the paper's
//! Figure 2.
//!
//! Run with: `cargo run --release --example linnos_failover`

use guardrails_repro::sparkline;
use guardrails_repro::storagesim::{run_fig2, LinnosSimConfig};

fn main() {
    let config = LinnosSimConfig::default();
    println!(
        "warmup {}  healthy {}  shifted {}  (shift at {})",
        config.warmup,
        config.healthy,
        config.shifted,
        config.shift_at()
    );
    let (guarded, unguarded) = run_fig2(config.clone());

    let gvals: Vec<f64> = guarded.series.iter().map(|&(_, v)| v).collect();
    let uvals: Vec<f64> = unguarded.series.iter().map(|&(_, v)| v).collect();
    println!("\nmoving average of I/O latencies (µs):");
    println!("  LinnOS w/ guardrails {}", sparkline(&gvals));
    println!("  LinnOS               {}", sparkline(&uvals));

    match guarded.guardrail_triggered_at {
        Some(at) => println!(
            "\nfalse-submit guardrail triggered at {at} ({}s after the shift)",
            (at - config.shift_at()).as_secs_f64()
        ),
        None => println!("\nguardrail did not trigger"),
    }

    println!("\nphase means (µs):");
    println!(
        "  healthy: guarded {:.0}  unguarded {:.0}",
        guarded.healthy.mean_latency_us, unguarded.healthy.mean_latency_us
    );
    println!(
        "  shifted: guarded {:.0}  unguarded {:.0}",
        guarded.shifted.mean_latency_us, unguarded.shifted.mean_latency_us
    );
    println!(
        "\nunguarded model's post-shift false-submit rate: {:.1}% (guardrail threshold: 5%)",
        unguarded.shifted.false_submit_rate * 100.0
    );
    println!(
        "ml_enabled at end: guarded {}  unguarded {}",
        guarded.ml_enabled_at_end, unguarded.ml_enabled_at_end
    );
}
