//! The P3 + P4 scenario: learned tiered-memory placement extrapolates out
//! of bounds and collapses under a write-random shift; the bounds guardrail
//! and quality guardrail fall back and retrain.
//!
//! Run with: `cargo run --release --example tiered_memory`

use guardrails_repro::memsim::sim::MemPolicyKind;
use guardrails_repro::memsim::{run_tiering_sim, TieringSimConfig};

fn main() {
    let heuristic = run_tiering_sim(TieringSimConfig {
        policy: MemPolicyKind::Heuristic,
        ..TieringSimConfig::default()
    });
    let unguarded = run_tiering_sim(TieringSimConfig::default());
    let guarded = run_tiering_sim(TieringSimConfig {
        with_guardrails: true,
        ..TieringSimConfig::default()
    });

    println!("policy                 phase1 hit  phase2 hit  phase2 tail  invalid allocs");
    for (name, r) in [
        ("lru-promote", &heuristic),
        ("learned (unguarded)", &unguarded),
        ("learned + guardrails", &guarded),
    ] {
        println!(
            "{name:<22} {:>9.1}%  {:>9.1}%  {:>10.1}%  {:>14}",
            r.phase1_hit_rate * 100.0,
            r.phase2_hit_rate * 100.0,
            r.phase2_tail_hit_rate * 100.0,
            r.invalid_allocs,
        );
    }

    println!(
        "\nguarded run: {} violations, {} policy swaps, retrained: {}, learned active at end: {}",
        guarded.violations, guarded.swaps, guarded.retrained, guarded.learned_active_at_end
    );
    println!(
        "The P3 guardrail stops out-of-bounds placements at the first violation \
         ({} rejected unguarded vs {} guarded)",
        unguarded.invalid_allocs, guarded.invalid_allocs
    );
}
