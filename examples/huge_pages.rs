//! The paper's motivating example, §1/§2: huge-page allocation can stall for
//! up to 500 ms, and "page fault latencies must not exceed 50ms" is the
//! canonical guardrail property. A learned promotion-cost estimator is
//! fooled by the free-memory proxy once external churn fragments memory;
//! the fault-latency guardrail falls back to base pages.
//!
//! Run with: `cargo run --release --example huge_pages`

use guardrails_repro::memsim::{run_huge_sim, HugeSimConfig, ThpPolicy};

fn main() {
    let always = run_huge_sim(HugeSimConfig {
        policy: ThpPolicy::Always,
        ..HugeSimConfig::default()
    });
    let never = run_huge_sim(HugeSimConfig {
        policy: ThpPolicy::Never,
        ..HugeSimConfig::default()
    });
    let unguarded = run_huge_sim(HugeSimConfig::default());
    let guarded = run_huge_sim(HugeSimConfig {
        with_guardrail: true,
        ..HugeSimConfig::default()
    });

    println!("policy                 pre mean   post mean   post p99   worst fault   stalls");
    for (name, r) in [
        ("thp=always", &always),
        ("base pages only", &never),
        ("learned (unguarded)", &unguarded),
        ("learned + guardrail", &guarded),
    ] {
        println!(
            "{name:<22} {:>8}  {:>9}  {:>9}  {:>11}  {:>6}",
            r.pre_mean.to_string(),
            r.post_mean.to_string(),
            r.post_p99.to_string(),
            r.worst_fault.to_string(),
            r.stalls,
        );
    }
    println!(
        "\nguardrail: QUANTILE(mem.fault_lat_ns, 0.99, 500ms) <= 50ms  ->  REPLACE(thp_policy, fallback)"
    );
    println!(
        "guarded run: {} violations; learned active at end: {}",
        guarded.violations, guarded.learned_active_at_end
    );
    println!(
        "\nthe paper's numbers, reproduced: worst-case huge-page fault {} (\"up to 500 ms\"),\n\
         and the 50ms fault-latency property broken by the stale estimator, restored by the guardrail.",
        unguarded.worst_fault
    );
}
