//! The P6 scenario: a learned shortest-predicted-burst scheduler starves
//! batch tasks; the starvation-freedom guardrail corrects it with
//! `DEPRIORITIZE`.
//!
//! Run with: `cargo run --release --example learned_scheduler`

use guardrails_repro::schedsim::{run_sched_sim, SchedSimConfig, SchedulerKind};

fn main() {
    let baseline = run_sched_sim(SchedSimConfig {
        scheduler: SchedulerKind::Cfs,
        ..SchedSimConfig::default()
    });
    let unguarded = run_sched_sim(SchedSimConfig::default());
    let guarded = run_sched_sim(SchedSimConfig {
        with_guardrail: true,
        ..SchedSimConfig::default()
    });

    println!(
        "{:<24} {:>14}  {:>6}  {:>10}  {:>17}",
        "policy", "batch max wait", "jain", "violations", "deprioritizations"
    );
    for report in [&baseline, &unguarded, &guarded] {
        let label = if report.violations > 0 || report.commands_applied > 0 {
            format!("{} + guardrail", report.scheduler)
        } else {
            report.scheduler.to_string()
        };
        println!(
            "{label:<24} {:>14}  {:>6.3}  {:>10}  {:>17}",
            report.batch_max_wait.to_string(),
            report.jain,
            report.violations,
            report.commands_applied,
        );
    }

    println!("\nper-task outcome under the guarded learned scheduler:");
    for task in &guarded.tasks {
        println!(
            "  {}  {}  cpu={}  max_wait={}  final nice={}{}",
            task.id,
            if task.batch {
                "batch      "
            } else {
                "interactive"
            },
            task.cpu_time,
            task.max_wait,
            task.final_priority.nice(),
            if task.killed { "  [killed]" } else { "" },
        );
    }
}
