//! The P2 scenario: a learned congestion controller collapses under noisy
//! RTT measurements; the robustness guardrail falls back to CUBIC.
//!
//! Run with: `cargo run --release --example congestion_control`

use guardrails_repro::netsim::{
    run_cc_sim, run_fairness_sim, CcPolicyKind, CcSimConfig, FairnessSimConfig,
};
use guardrails_repro::sparkline;

fn main() {
    let cubic = run_cc_sim(CcSimConfig {
        policy: CcPolicyKind::Cubic,
        ..CcSimConfig::default()
    });
    let unguarded = run_cc_sim(CcSimConfig::default());
    let guarded = run_cc_sim(CcSimConfig {
        with_guardrail: true,
        ..CcSimConfig::default()
    });

    println!("controller             clean util  noisy util  noisy tail  violations");
    for (name, r) in [
        ("cubic", &cubic),
        ("learned (unguarded)", &unguarded),
        ("learned + guardrail", &guarded),
    ] {
        println!(
            "{name:<22} {:>9.2}  {:>9.2}  {:>9.2}  {:>10}",
            r.clean_utilization, r.noisy_utilization, r.noisy_tail_utilization, r.violations,
        );
    }

    // The utilization time series, post-training only (the interesting part).
    let tail = |r: &guardrails_repro::netsim::CcReport| -> Vec<f64> {
        let skip = r.series.len().saturating_sub(80);
        r.series.iter().skip(skip).map(|&(_, v)| v).collect()
    };
    println!("\nutilization (last 80 samples; RTT noise starts mid-way):");
    println!("  learned + guardrail {}", sparkline(&tail(&guarded)));
    println!("  learned (unguarded) {}", sparkline(&tail(&unguarded)));
    println!(
        "\nlearned controller active at end: guarded {}  unguarded {}",
        guarded.learned_active_at_end, unguarded.learned_active_at_end
    );

    // The P6 flavour: the same controller sharing a link with an AIMD flow
    // starves itself (the end-to-end starvation failure the paper cites);
    // the Jain-index guardrail restores the split.
    let fair_un = run_fairness_sim(FairnessSimConfig::default());
    let fair_g = run_fairness_sim(FairnessSimConfig {
        with_guardrail: true,
        ..FairnessSimConfig::default()
    });
    println!("\nsharing the link with an AIMD flow (fairness guardrail):");
    println!(
        "  unguarded: Jain {:.2}, learned share {:.0}%  |  guarded: Jain {:.2} ({} violations)",
        fair_un.tail_jain,
        fair_un.tail_shares[0] * 100.0,
        fair_g.tail_jain,
        fair_g.violations
    );
}
