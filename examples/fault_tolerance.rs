//! Fault tolerance: the guardrail runtime surviving its own bad day.
//!
//! The guardrail is the safety net, so the net itself must not tear. This
//! example walks the hardened runtime's counter-mechanisms one at a time —
//! value quarantine, `REPLACE` fallback, the monitor watchdog — and then
//! runs one full chaos scenario (NaN-poisoned model outputs against the
//! LinnOS setting) contrasting the seed runtime with the hardened one.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use guardrails_repro::guardrails::monitor::{ResilienceConfig, WatchdogConfig};
use guardrails_repro::guardrails::prelude::*;
use guardrails_repro::storagesim::{run_fault_pair, FaultRunReport};

const FAILOVER_SPEC: &str = r#"
guardrail failover {
    trigger: { TIMER(start_time, 1s) },
    rule: { LOAD(err_rate) <= 0.05 },
    action: { REPLACE(io_submit, safe) }
}
"#;

const LISTING_2: &str = r#"
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}
"#;

fn main() {
    // 1. Value quarantine: one NaN from a broken inference path would trip
    //    every comparison and latch any derived EWMA forever. The hardened
    //    store drops non-finite SAVEs at the boundary and counts them.
    let store = FeatureStore::new();
    store.save("prediction_health", 0.42);
    store.save("prediction_health", f64::NAN);
    store.save("prediction_health", f64::INFINITY);
    println!(
        "quarantine: value still {:?}, {} poisoned save(s) rejected",
        store.load("prediction_health"),
        store.poison_count("prediction_health"),
    );

    // 2. Fail-safe REPLACE: the named target variant is gone (a deploy
    //    removed it, say). The seed runtime errors into a log line forever;
    //    the hardened runtime degrades to the slot's registered default.
    let mut engine = MonitorEngine::new();
    engine.set_resilience(ResilienceConfig::hardened());
    let registry = engine.registry();
    registry
        .register("io_submit", &[VARIANT_LEARNED, "safe", "default"])
        .unwrap();
    registry
        .set_default_variant("io_submit", "default")
        .unwrap();
    registry.unregister_variant("io_submit", "safe").unwrap();
    engine.install_str(FAILOVER_SPEC).unwrap();
    engine.store().save("err_rate", 0.20);
    engine.advance_to(Nanos::from_secs(2));
    println!(
        "replace fallback: target 'safe' missing, active variant now 'default' = {}",
        registry.is_active("io_submit", "default"),
    );

    // 3. The watchdog: a rule that faults every evaluation (here: fuel
    //    exhaustion mid-expression) must not wedge silently. Fail-closed
    //    disables the monitor after N faults and fires its actions once on
    //    the way down — wrong is allowed, silent is not.
    let mut engine = MonitorEngine::new();
    engine.set_resilience(ResilienceConfig {
        watchdog: Some(WatchdogConfig::fail_closed().with_max_faults(3)),
        ..ResilienceConfig::hardened()
    });
    engine.install_str(LISTING_2).unwrap();
    let store = engine.store();
    store.save("ml_enabled", 1.0);
    store.save("false_submit_rate", 0.0);
    engine.set_rule_fuel_limit(Some(1));
    engine.advance_to(Nanos::from_secs(5));
    let stats = engine.stats();
    println!(
        "watchdog: {} rule faults -> {} trip(s), ml_enabled now {} (fail-closed)",
        stats.rule_faults,
        stats.watchdog_trips,
        store.flag("ml_enabled"),
    );

    // 4. A full chaos scenario: NaN-poisoned model outputs in the LinnOS
    //    setting (experiment E9, one row). Identical seeds; only the
    //    runtime differs.
    println!("\nchaos scenario: poison_nan on the LinnOS setting (takes a few seconds)");
    let (seed_run, hardened) = run_fault_pair(
        FaultKind::PoisonModelOutput {
            mode: PoisonMode::Nan,
        },
        0xF162,
    );
    let describe = |r: &FaultRunReport| {
        format!(
            "recovery {:>5} | {} poisoned saves quarantined | ml at end: {} | wedged: {}",
            r.recovery
                .map_or("never".to_string(), |n| format!("{:.1}s", n.as_secs_f64())),
            r.poisoned_saves,
            r.ml_enabled_at_end,
            r.wedged,
        )
    };
    println!("  seed runtime:     {}", describe(&seed_run));
    println!("  hardened runtime: {}", describe(&hardened));
}
