//! Crash recovery: guardrail decisions that survive reboots.
//!
//! A restart that wipes the feature store silently re-arms the very model a
//! guardrail had disabled. This example walks the recovery layer one piece
//! at a time — the WAL + snapshot durable store, the engine checkpoint, the
//! supervisor's escalation ladder — and then runs the E10 crash scenario
//! contrasting the seed runtime with the recovery runtime.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::sync::Arc;

use guardrails_repro::guardrails::monitor::supervisor::{
    fail_closed, RestartDecision, Supervisor, SupervisorConfig,
};
use guardrails_repro::guardrails::monitor::EngineCheckpoint;
use guardrails_repro::guardrails::prelude::*;
use guardrails_repro::guardrails::store::durable::{
    DurabilityConfig, DurableStore, MemBackend, PersistBackend,
};
use guardrails_repro::storagesim::{run_crash_pair, run_no_crash_reference};

const LISTING_2: &str = r#"
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: {
        SAVE(ml_enabled, false)
        REPLACE(io_submit, safe)
    }
}
"#;

fn open(backend: &Arc<MemBackend>) -> DurableStore {
    let b: Arc<dyn PersistBackend> = backend.clone();
    DurableStore::open(b, DurabilityConfig::default())
        .unwrap()
        .0
}

fn main() {
    // 1. The durable store: every SAVE is write-ahead-logged, so state
    //    survives a process death — including a crash that tears the final
    //    append mid-write.
    let backend = Arc::new(MemBackend::new());
    {
        let durable = open(&backend);
        let store = durable.store();
        store.save("ml_enabled", 0.0); // the guardrail's kill switch
        store.save("false_submit_rate", 0.12);
    }
    backend.tear_wal_tail(5); // crash mid-append of the last frame
    {
        let b: Arc<dyn PersistBackend> = backend.clone();
        let (durable, report) = DurableStore::open(b, DurabilityConfig::default()).unwrap();
        println!(
            "durable store: ml_enabled={:?} after reboot ({} byte torn tail repaired, tainted={})",
            durable.store().load("ml_enabled"),
            report.torn_tail_bytes,
            report.tainted(),
        );
    }

    // 2. The engine checkpoint: hysteresis, enabled/disabled state, and the
    //    REPLACE-chosen policy variant all resume. Here the guardrail fires,
    //    the process dies, and the next incarnation comes up with the model
    //    still off and the safe variant still pinned.
    let backend = Arc::new(MemBackend::new());
    {
        let durable = open(&backend);
        let registry = Arc::new(PolicyRegistry::new());
        registry
            .register("io_submit", &[VARIANT_LEARNED, "safe"])
            .unwrap();
        registry.set_default_variant("io_submit", "safe").unwrap();
        let mut engine = MonitorEngine::with_parts(durable.store(), Arc::clone(&registry));
        engine.install_str(LISTING_2).unwrap();
        let store = engine.store();
        store.save("ml_enabled", 1.0);
        store.save("false_submit_rate", 0.2);
        engine.advance_to(Nanos::from_secs(3)); // the guardrail trips here
        durable
            .save_checkpoint(&engine.checkpoint().encode())
            .unwrap();
        // ...crash: engine, store, and registry all die with the process.
    }
    {
        let durable = open(&backend);
        let registry = Arc::new(PolicyRegistry::new());
        registry
            .register("io_submit", &[VARIANT_LEARNED, "safe"])
            .unwrap();
        registry.set_default_variant("io_submit", "safe").unwrap();
        let mut engine = MonitorEngine::with_parts(durable.store(), Arc::clone(&registry));
        engine.install_str(LISTING_2).unwrap();
        let cp = EngineCheckpoint::decode(&durable.load_checkpoint().unwrap()).unwrap();
        engine.advance_to(cp.now);
        engine.restore(&cp).unwrap();
        println!(
            "checkpoint: after restart ml_enabled={} and active variant='{}'",
            engine.store().flag("ml_enabled"),
            registry.active("io_submit").unwrap(),
        );
    }

    // 3. The supervisor: isolated crashes restart with doubling backoff; a
    //    rapid crash loop escalates to fail-closed — fallbacks pinned, the
    //    enable flag zeroed, with no monitor left running at all.
    let mut supervisor = Supervisor::new(SupervisorConfig::default());
    let registry = Arc::new(PolicyRegistry::new());
    registry
        .register("io_submit", &[VARIANT_LEARNED, "safe"])
        .unwrap();
    registry.set_default_variant("io_submit", "safe").unwrap();
    registry.replace("io_submit", VARIANT_LEARNED).unwrap();
    let store = FeatureStore::new();
    store.save("ml_enabled", 1.0);
    let mut now = Nanos::from_secs(1);
    loop {
        match supervisor.on_crash(now) {
            RestartDecision::Restart { at, backoff } => {
                println!(
                    "supervisor: crash at {:.1}s -> restart after {}ms",
                    now.as_secs_f64(),
                    backoff.as_nanos() / 1_000_000,
                );
                supervisor.on_restarted();
                now = at + Nanos::from_millis(50); // ...and it crashes again
            }
            RestartDecision::FailClosed => {
                let pins = fail_closed(&registry, &store, &["ml_enabled"]);
                println!(
                    "supervisor: crash loop -> fail closed, pinned {:?}, ml_enabled={}",
                    pins,
                    store.flag("ml_enabled"),
                );
                break;
            }
        }
    }

    // 4. The full E10 scenario: the LinnOS run crashed at t=8s, 1s after the
    //    guardrail disabled the model. The seed runtime re-runs init on boot
    //    and re-arms the dead model; the recovery runtime resumes.
    println!("\nE10 (crash at the Listing-2 violation point):");
    let reference = run_no_crash_reference(0xF162);
    let (seed_run, recovered) = run_crash_pair(FaultKind::Crash, 0xF162);
    for r in [&reference, &seed_run, &recovered] {
        println!(
            "  {:<10} {:<9} re-armed I/Os: {:>5}  post-crash latency: {:.0}us",
            r.label,
            if r.durable { "recovery" } else { "seed" },
            r.rearmed_ios,
            r.post_crash_latency_us,
        );
    }
    println!(
        "  the recovery runtime lost no decisions and lands within {:.1}% of the no-crash run",
        100.0 * (recovered.post_crash_latency_us - reference.post_crash_latency_us).abs()
            / reference.post_crash_latency_us,
    );
}
