//! The overhead guardrail: a monitor that polices the monitors.
//!
//! The paper's property taxonomy includes P5 — *decision overhead*, the
//! cost of the policing itself — and argues a deployed guardrail system
//! must bound it. This example closes that loop with nothing but the
//! spec language: the engine publishes its own telemetry into the
//! feature store under the reserved `__telemetry/` namespace, so an
//! ordinary guardrail can `LOAD` the runtime's self-measurements and
//! fire `REPORT` (A1) and `DEPRIORITIZE` (A4) when a monitor's modelled
//! overhead exceeds budget.
//!
//! Walkthrough:
//!
//! 1. Install a deliberately hot "hog" monitor (a microsecond timer
//!    burning rule fuel — the stand-in for an over-instrumented probe).
//! 2. Attach a [`Telemetry`] bundle and turn on periodic
//!    self-publication, so `__telemetry/guardrail/hog/overhead_fraction`
//!    (fuel-modelled, deterministic) refreshes every simulated
//!    millisecond.
//! 3. Install the budget guardrail, whose rule is simply
//!    `LOAD("__telemetry/guardrail/hog/overhead_fraction") <= 0.01`.
//! 4. Drive the clock. When the hog's overhead crosses 1%, the budget
//!    guardrail REPORTs (with the offending fraction snapshotted into
//!    the log line) and emits a `Deprioritize` command; the host drains
//!    it and demotes the hog, exactly as a scheduler demotes a runaway
//!    task.
//!
//! Run with: `cargo run --release --example overhead_guardrail`

use guardrails_repro::guardrails::action::Command;
use guardrails_repro::guardrails::prelude::*;

/// The runaway monitor: ticks every microsecond, burns fuel on a
/// tautological rule, never fires its action. Its only observable
/// behavior *is* its overhead.
const HOG: &str = r#"
guardrail hog {
    trigger: { TIMER(0, 1us) },
    rule: { LOAD(qdepth) + LOAD(qdepth) * 2 + LOAD(qdepth) / 2 - LOAD(qdepth) + LOAD(qdepth) >= 0 - 1e18 },
    action: { RECORD(hog_fired, 1) }
}
"#;

/// The budget guardrail. The quoted key is an ordinary feature-store
/// key — the runtime publishes its self-measurements there, so P5
/// enforcement needs no new machinery at all.
const BUDGET: &str = r#"
guardrail overhead-budget {
    trigger: { TIMER(0, 1ms) },
    rule: { LOAD("__telemetry/guardrail/hog/overhead_fraction") <= 0.01 },
    action: {
        REPORT("hog monitor over P5 budget", "__telemetry/guardrail/hog/overhead_fraction"),
        DEPRIORITIZE(hog, 2)
    }
}
"#;

fn main() {
    let telemetry = Telemetry::new();
    let mut engine = MonitorEngine::new();
    engine.set_telemetry(telemetry.clone());
    engine.set_telemetry_publish_interval(Some(Nanos::from_millis(1)));
    engine.install_str(HOG).expect("hog installs");
    engine.install_str(BUDGET).expect("budget installs");
    engine.store().save("qdepth", 5.0);

    println!("== driving the clock, 1ms steps ==");
    let mut demoted = false;
    let mut commands = Vec::new();
    for ms in 1..=10u64 {
        engine.advance_to(Nanos::from_millis(ms));
        commands.clear();
        engine.drain_commands_into(&mut commands);
        for (at, command) in &commands {
            if let Command::Deprioritize {
                guardrail,
                target,
                steps,
            } = command
            {
                println!(
                    "t={:>8}ns  {guardrail} -> DEPRIORITIZE({target}, {steps})",
                    at.as_nanos()
                );
                if !demoted {
                    // The host's side of the loop: demote the hog.
                    engine.set_enabled(target, false).expect("hog exists");
                    demoted = true;
                    println!("             host disabled '{target}'");
                }
            }
        }
    }
    assert!(demoted, "the budget guardrail must catch the hog");

    let fraction = engine
        .store()
        .load("__telemetry/guardrail/hog/overhead_fraction")
        .unwrap_or(0.0);
    println!("\n== REPORT log (A1) ==");
    for record in engine.reports().records() {
        println!(
            "  [{}] {}: {}",
            record.at.as_nanos(),
            record.source,
            record.message
        );
    }

    println!("\n== published self-measurements ==");
    let mut published: Vec<(String, f64)> = engine
        .store()
        .scalars()
        .into_iter()
        .filter(|(key, _)| key.starts_with(&format!("{RESERVED_PREFIX}guardrail/hog/")))
        .collect();
    published.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, value) in &published {
        println!("  {key} = {value}");
    }
    println!("\nhog overhead fraction at the end: {fraction:.4} (budget 0.01)");

    println!("\n== trace ring (last 8 events) ==");
    let resolve = {
        let names = engine.monitor_names();
        move |m: u32| names.get(m as usize).cloned()
    };
    let text = telemetry.trace.export_text(&resolve);
    for line in text.lines().rev().take(8).collect::<Vec<_>>().iter().rev() {
        println!("  {line}");
    }
}
