#!/usr/bin/env bash
# Repository CI gate: build, test, lint, format, determinism. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Determinism gate: E10 is seeded and wall-clock-free, so its CSV must be
# byte-identical on every run. Regenerate and diff against the committed copy.
cargo run --release -p gr-bench --bin exp_recovery >/dev/null
git diff --exit-code -- results/exp_recovery.csv || {
    echo "exp_recovery.csv changed: E10 is no longer deterministic (or the" \
         "committed results are stale — rerun and commit them)." >&2
    exit 1
}

# Criterion smoke run: the offline criterion shim caps every benchmark at a
# ~25ms budget, so the whole suite is a fast sanity pass that the bench
# targets still run (the numbers themselves are not gated).
cargo bench -p gr-bench >/dev/null

# E11 determinism + hot-path invariants: the binary asserts that batched
# ingestion is observationally identical to (and >=3x faster than) the
# legacy path and that group commit shrinks the WAL; its CSV holds only
# deterministic columns and must be byte-identical on every run.
cargo run --release -p gr-bench --bin exp_hotpath >/dev/null
git diff --exit-code -- results/exp_hotpath.csv || {
    echo "exp_hotpath.csv changed: E11 is no longer deterministic (or the" \
         "committed results are stale — rerun and commit them)." >&2
    exit 1
}
