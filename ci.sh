#!/usr/bin/env bash
# Repository CI gate: build, test, lint, format, determinism. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace

# Run the whole workspace's tests and compare the total against the
# committed baseline: a shrinking count means coverage silently regressed,
# a growing one means the baseline needs a (reviewed) bump. Either way the
# delta is printed so it is visible in CI logs.
test_log="$(mktemp)"
cargo test -q --workspace 2>&1 | tee "$test_log"
test_count="$(awk '/^test result:/ { total += $4 } END { print total + 0 }' "$test_log")"
rm -f "$test_log"
baseline="$(cat results/test_count.txt)"
echo "workspace tests: ${test_count} (baseline ${baseline}, delta $((test_count - baseline)))"
if [ "${test_count}" -ne "${baseline}" ]; then
    echo "test count moved from ${baseline} to ${test_count}: update" \
         "results/test_count.txt if the change is intentional." >&2
    exit 1
fi

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Determinism gate: E10 is seeded and wall-clock-free, so its CSV must be
# byte-identical on every run. Regenerate and diff against the committed copy.
cargo run --release -p gr-bench --bin exp_recovery >/dev/null
git diff --exit-code -- results/exp_recovery.csv || {
    echo "exp_recovery.csv changed: E10 is no longer deterministic (or the" \
         "committed results are stale — rerun and commit them)." >&2
    exit 1
}

# Criterion smoke run: the offline criterion shim caps every benchmark at a
# ~25ms budget, so the whole suite is a fast sanity pass that the bench
# targets still run (the numbers themselves are not gated).
cargo bench -p gr-bench >/dev/null

# E11 determinism + hot-path invariants: the binary asserts that batched
# ingestion is observationally identical to (and >=3x faster than) the
# legacy path and that group commit shrinks the WAL; its CSV holds only
# deterministic columns and must be byte-identical on every run.
cargo run --release -p gr-bench --bin exp_hotpath >/dev/null
git diff --exit-code -- results/exp_hotpath.csv || {
    echo "exp_hotpath.csv changed: E11 is no longer deterministic (or the" \
         "committed results are stale — rerun and commit them)." >&2
    exit 1
}

# E12 determinism + telemetry invariants: the binary asserts telemetry-on
# ingestion stays within 3% of telemetry-off with bit-identical outputs,
# and that the overhead-budget guardrail demotes the hog monitor; its CSV
# holds only deterministic counters and must be byte-identical every run.
cargo run --release -p gr-bench --bin exp_telemetry >/dev/null
git diff --exit-code -- results/exp_telemetry.csv || {
    echo "exp_telemetry.csv changed: E12 is no longer deterministic (or the" \
         "committed results are stale — rerun and commit them)." >&2
    exit 1
}
