#!/usr/bin/env bash
# Repository CI gate: build, test, lint, format, determinism. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Determinism gate: E10 is seeded and wall-clock-free, so its CSV must be
# byte-identical on every run. Regenerate and diff against the committed copy.
cargo run --release -p gr-bench --bin exp_recovery >/dev/null
git diff --exit-code -- results/exp_recovery.csv || {
    echo "exp_recovery.csv changed: E10 is no longer deterministic (or the" \
         "committed results are stale — rerun and commit them)." >&2
    exit 1
}
