//! Umbrella crate for the OS Guardrails reproduction.
//!
//! The real APIs live in the workspace crates; this crate re-exports them
//! for the runnable examples and cross-crate integration tests, and adds
//! small result-reporting helpers shared by the experiment binaries.
//!
//! - [`guardrails`] — the framework (spec language → verified monitors).
//! - [`simkernel`] — the simulated-kernel substrate.
//! - [`mlkit`] — the from-scratch ML substrate.
//! - [`storagesim`] — flash array + LinnOS (Figure 2).
//! - [`schedsim`] — CPU scheduling (P6 / `DEPRIORITIZE`).
//! - [`memsim`] — tiered memory (P3 / P4 / `RETRAIN`).
//! - [`netsim`] — congestion control (P2 / `REPLACE`).
//! - [`cachesim`] — cache replacement (P4 vs. random).

#![warn(missing_docs)]

pub use cachesim;
pub use guardrails;
pub use memsim;
pub use mlkit;
pub use netsim;
pub use schedsim;
pub use simkernel;
pub use storagesim;

use std::fmt::Write as _;

/// Formats a two-column numeric series as CSV text (used by the example
/// binaries to emit time series without plotting dependencies).
///
/// # Examples
///
/// ```
/// let text = guardrails_repro::format_series(&[(0.0, 1.5), (1.0, 2.0)], "t", "v");
/// assert!(text.starts_with("t,v\n"));
/// assert!(text.contains("1.000,2.000"));
/// ```
pub fn format_series(series: &[(f64, f64)], x_name: &str, y_name: &str) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in series {
        let _ = writeln!(out, "{x:.3},{y:.3}");
    }
    out
}

/// Renders a sparkline of a series (terminal-friendly "plot" for examples).
///
/// # Examples
///
/// ```
/// let line = guardrails_repro::sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(line.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_series_emits_csv() {
        let text = format_series(&[(1.0, 2.0)], "x", "y");
        assert_eq!(text, "x,y\n1.000,2.000\n");
    }

    #[test]
    fn sparkline_spans_range() {
        let line = sparkline(&[0.0, 1.0]);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        // Constant series stays at the bottom without dividing by zero.
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
    }
}
